#include "rel/operators.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "storage/bat_ops.h"
#include "util/string_util.h"

namespace rma::rel {

namespace {

// Concatenated values of column `c` from both relations (same type).
template <typename T>
std::vector<T> ConcatColumn(const Relation& a, const Relation& b, int c) {
  const auto& ca = static_cast<const TypedBat<T>&>(*a.column(c)).data();
  const auto& cb = static_cast<const TypedBat<T>&>(*b.column(c)).data();
  std::vector<T> v;
  v.reserve(ca.size() + cb.size());
  v.insert(v.end(), ca.begin(), ca.end());
  v.insert(v.end(), cb.begin(), cb.end());
  return v;
}

}  // namespace

Result<Relation> Select(const Relation& r, const ExprPtr& predicate) {
  RMA_ASSIGN_OR_RETURN(BoundExpr pred, Bind(predicate, r.schema()));
  std::vector<int64_t> keep;
  const int64_t n = r.num_rows();
  for (int64_t i = 0; i < n; ++i) {
    if (pred.EvalBool(r, i)) keep.push_back(i);
  }
  return r.TakeRows(keep);
}

Result<Relation> ProjectNames(const Relation& r,
                              const std::vector<std::string>& names) {
  RMA_ASSIGN_OR_RETURN(std::vector<int> idx, r.schema().IndicesOf(names));
  return r.SelectColumns(idx);
}

Result<Relation> Project(const Relation& r,
                         const std::vector<ProjectItem>& items) {
  std::vector<Attribute> attrs;
  std::vector<BoundExpr> bound;
  attrs.reserve(items.size());
  bound.reserve(items.size());
  for (const auto& item : items) {
    RMA_ASSIGN_OR_RETURN(BoundExpr be, Bind(item.expr, r.schema()));
    attrs.push_back(Attribute{item.name, be.type()});
    bound.push_back(std::move(be));
  }
  RMA_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(attrs)));
  const int64_t n = r.num_rows();
  std::vector<BatPtr> cols;
  cols.reserve(items.size());
  for (size_t c = 0; c < bound.size(); ++c) {
    // Fast path: a bare column reference shares the BAT.
    if (bound[c].is_column()) {
      cols.push_back(r.column(bound[c].column_index()));
      continue;
    }
    switch (schema.attribute(static_cast<int>(c)).type) {
      case DataType::kInt64: {
        std::vector<int64_t> v(static_cast<size_t>(n));
        for (int64_t i = 0; i < n; ++i) {
          v[static_cast<size_t>(i)] = std::get<int64_t>(bound[c].Eval(r, i));
        }
        cols.push_back(MakeInt64Bat(std::move(v)));
        break;
      }
      case DataType::kDouble: {
        std::vector<double> v(static_cast<size_t>(n));
        for (int64_t i = 0; i < n; ++i) {
          v[static_cast<size_t>(i)] = bound[c].EvalDouble(r, i);
        }
        cols.push_back(MakeDoubleBat(std::move(v)));
        break;
      }
      case DataType::kString: {
        std::vector<std::string> v(static_cast<size_t>(n));
        for (int64_t i = 0; i < n; ++i) {
          v[static_cast<size_t>(i)] = ValueToString(bound[c].Eval(r, i));
        }
        cols.push_back(MakeStringBat(std::move(v)));
        break;
      }
    }
  }
  return Relation::Make(std::move(schema), std::move(cols), r.name());
}

Result<Relation> RenameAll(const Relation& r,
                           const std::vector<std::string>& new_names) {
  if (static_cast<int>(new_names.size()) != r.num_columns()) {
    return Status::Invalid("rename: name count mismatch");
  }
  std::vector<Attribute> attrs = r.schema().attributes();
  for (size_t i = 0; i < new_names.size(); ++i) attrs[i].name = new_names[i];
  RMA_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(attrs)));
  return Relation::Make(std::move(schema), r.columns(), r.name());
}

Result<Relation> Rename(const Relation& r, const std::string& old_name,
                        const std::string& new_name) {
  RMA_ASSIGN_OR_RETURN(int idx, r.schema().IndexOf(old_name));
  return r.RenameColumn(idx, new_name);
}

namespace {

// Concatenates schemas, suffixing right-side duplicates with "_2".
Result<Schema> JoinedSchema(const Schema& l, const Schema& rs) {
  std::vector<Attribute> attrs = l.attributes();
  std::unordered_set<std::string> used;
  for (const auto& a : attrs) used.insert(a.name);
  for (const auto& a : rs.attributes()) {
    Attribute copy = a;
    while (used.count(copy.name) > 0) copy.name += "_2";
    used.insert(copy.name);
    attrs.push_back(std::move(copy));
  }
  return Schema::Make(std::move(attrs));
}

Relation MaterializeJoin(const Relation& l, const Relation& r,
                         const Schema& schema,
                         const std::vector<int64_t>& li,
                         const std::vector<int64_t>& ri) {
  std::vector<BatPtr> cols;
  cols.reserve(static_cast<size_t>(l.num_columns() + r.num_columns()));
  for (const auto& c : l.columns()) cols.push_back(c->Take(li));
  for (const auto& c : r.columns()) cols.push_back(c->Take(ri));
  return Relation::Make(schema, std::move(cols), l.name()).ValueOrDie();
}

}  // namespace

Result<Relation> HashJoin(const Relation& l, const Relation& r,
                          const std::vector<std::string>& left_keys,
                          const std::vector<std::string>& right_keys) {
  if (left_keys.size() != right_keys.size() || left_keys.empty()) {
    return Status::Invalid("join: key lists must be equal-length, non-empty");
  }
  RMA_ASSIGN_OR_RETURN(std::vector<int> lki, l.schema().IndicesOf(left_keys));
  RMA_ASSIGN_OR_RETURN(std::vector<int> rki, r.schema().IndicesOf(right_keys));
  return HashJoinAt(l, r, lki, rki);
}

Result<Relation> HashJoinAt(const Relation& l, const Relation& r,
                            const std::vector<int>& lki,
                            const std::vector<int>& rki) {
  if (lki.size() != rki.size() || lki.empty()) {
    return Status::Invalid("join: key lists must be equal-length, non-empty");
  }
  std::vector<BatPtr> lkeys;
  std::vector<BatPtr> rkeys;
  for (int i : lki) lkeys.push_back(l.column(i));
  for (int i : rki) rkeys.push_back(r.column(i));
  for (size_t i = 0; i < lkeys.size(); ++i) {
    const DataType lt = lkeys[i]->type();
    const DataType rt = rkeys[i]->type();
    if (lt != rt && !(IsNumeric(lt) && IsNumeric(rt))) {
      return Status::TypeError("join: key type mismatch on " +
                               l.schema().attribute(lki[i]).name);
    }
    if (lt != rt) {
      // Normalize numeric key pairs to double for hashing/comparison.
      lkeys[i] = MakeDoubleBat(ToDoubleVector(*lkeys[i]));
      rkeys[i] = MakeDoubleBat(ToDoubleVector(*rkeys[i]));
    }
  }
  // Build on the smaller side.
  const bool build_left = l.num_rows() <= r.num_rows();
  const auto& bkeys = build_left ? lkeys : rkeys;
  const auto& pkeys = build_left ? rkeys : lkeys;
  bat_ops::RowIndex index = bat_ops::BuildRowIndex(bkeys);
  std::vector<int64_t> li;
  std::vector<int64_t> ri;
  const int64_t pn = build_left ? r.num_rows() : l.num_rows();
  for (int64_t i = 0; i < pn; ++i) {
    auto it = index.find(bat_ops::HashRow(pkeys, i));
    if (it == index.end()) continue;
    for (int64_t cand : it->second) {
      if (!bat_ops::EqualRows(bkeys, cand, pkeys, i)) continue;
      if (build_left) {
        li.push_back(cand);
        ri.push_back(i);
      } else {
        li.push_back(i);
        ri.push_back(cand);
      }
    }
  }
  RMA_ASSIGN_OR_RETURN(Schema schema, JoinedSchema(l.schema(), r.schema()));
  return MaterializeJoin(l, r, schema, li, ri);
}

Result<Relation> CrossJoin(const Relation& l, const Relation& r) {
  const int64_t ln = l.num_rows();
  const int64_t rn = r.num_rows();
  std::vector<int64_t> li;
  std::vector<int64_t> ri;
  li.reserve(static_cast<size_t>(ln * rn));
  ri.reserve(static_cast<size_t>(ln * rn));
  for (int64_t i = 0; i < ln; ++i) {
    for (int64_t j = 0; j < rn; ++j) {
      li.push_back(i);
      ri.push_back(j);
    }
  }
  RMA_ASSIGN_OR_RETURN(Schema schema, JoinedSchema(l.schema(), r.schema()));
  return MaterializeJoin(l, r, schema, li, ri);
}

namespace {

enum class AggKind { kCount, kSum, kAvg, kMin, kMax };

Result<AggKind> ParseAggKind(const std::string& func) {
  const std::string f = ToUpper(func);
  if (f == "COUNT") return AggKind::kCount;
  if (f == "SUM") return AggKind::kSum;
  if (f == "AVG") return AggKind::kAvg;
  if (f == "MIN") return AggKind::kMin;
  if (f == "MAX") return AggKind::kMax;
  return Status::Invalid("unknown aggregate: " + func);
}

struct AggState {
  double sum = 0.0;
  int64_t count = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
};

}  // namespace

Result<Relation> Aggregate(const Relation& r,
                           const std::vector<std::string>& group_by,
                           const std::vector<AggSpec>& aggs) {
  RMA_ASSIGN_OR_RETURN(std::vector<int> gidx, r.schema().IndicesOf(group_by));
  std::vector<AggKind> kinds;
  std::vector<int> aidx;  // argument column; -1 for COUNT(*)
  for (const auto& a : aggs) {
    RMA_ASSIGN_OR_RETURN(AggKind k, ParseAggKind(a.func));
    kinds.push_back(k);
    if (a.arg.empty()) {
      if (k != AggKind::kCount) {
        return Status::Invalid("only COUNT may omit its argument");
      }
      aidx.push_back(-1);
    } else {
      RMA_ASSIGN_OR_RETURN(int idx, r.schema().IndexOf(a.arg));
      if (!IsNumeric(r.schema().attribute(idx).type)) {
        return Status::TypeError("aggregate over non-numeric attribute " +
                                 a.arg);
      }
      aidx.push_back(idx);
    }
  }
  std::vector<BatPtr> gkeys;
  for (int i : gidx) gkeys.push_back(r.column(i));

  const int64_t n = r.num_rows();
  std::vector<int64_t> group_of(static_cast<size_t>(n), 0);
  std::vector<int64_t> rep_rows;  // representative row per group
  if (gkeys.empty()) {
    rep_rows.push_back(0);  // single global group (present even if empty)
  } else {
    std::unordered_map<uint64_t, std::vector<int64_t>> seen;  // hash -> groups
    for (int64_t i = 0; i < n; ++i) {
      const uint64_t h = bat_ops::HashRow(gkeys, i);
      auto& cands = seen[h];
      int64_t gid = -1;
      for (int64_t cand : cands) {
        if (bat_ops::EqualRows(gkeys, rep_rows[static_cast<size_t>(cand)],
                               gkeys, i)) {
          gid = cand;
          break;
        }
      }
      if (gid < 0) {
        gid = static_cast<int64_t>(rep_rows.size());
        rep_rows.push_back(i);
        cands.push_back(gid);
      }
      group_of[static_cast<size_t>(i)] = gid;
    }
  }
  const int64_t num_groups = static_cast<int64_t>(rep_rows.size());
  std::vector<std::vector<AggState>> state(
      aggs.size(), std::vector<AggState>(static_cast<size_t>(num_groups)));
  for (int64_t i = 0; i < n; ++i) {
    const int64_t g = group_of[static_cast<size_t>(i)];
    for (size_t a = 0; a < aggs.size(); ++a) {
      AggState& st = state[a][static_cast<size_t>(g)];
      st.count += 1;
      if (aidx[a] >= 0) {
        const double v = r.column(aidx[a])->GetDouble(i);
        st.sum += v;
        st.min = std::min(st.min, v);
        st.max = std::max(st.max, v);
      }
    }
  }
  // Assemble output: group columns (values from representative rows) then
  // aggregate columns.
  std::vector<Attribute> attrs;
  std::vector<BatPtr> cols;
  if (!gkeys.empty()) {
    for (size_t k = 0; k < gkeys.size(); ++k) {
      attrs.push_back(Attribute{group_by[k], gkeys[k]->type()});
      cols.push_back(gkeys[k]->Take(rep_rows));
    }
  }
  const bool empty_global = gkeys.empty() && n == 0;
  for (size_t a = 0; a < aggs.size(); ++a) {
    if (kinds[a] == AggKind::kCount) {
      std::vector<int64_t> v(static_cast<size_t>(num_groups));
      for (int64_t g = 0; g < num_groups; ++g) {
        v[static_cast<size_t>(g)] =
            empty_global ? 0 : state[a][static_cast<size_t>(g)].count;
      }
      attrs.push_back(Attribute{aggs[a].out_name, DataType::kInt64});
      cols.push_back(MakeInt64Bat(std::move(v)));
      continue;
    }
    std::vector<double> v(static_cast<size_t>(num_groups), 0.0);
    for (int64_t g = 0; g < num_groups; ++g) {
      const AggState& st = state[a][static_cast<size_t>(g)];
      switch (kinds[a]) {
        case AggKind::kSum:
          v[static_cast<size_t>(g)] = st.sum;
          break;
        case AggKind::kAvg:
          v[static_cast<size_t>(g)] = st.count == 0 ? 0.0 : st.sum / st.count;
          break;
        case AggKind::kMin:
          v[static_cast<size_t>(g)] = st.min;
          break;
        case AggKind::kMax:
          v[static_cast<size_t>(g)] = st.max;
          break;
        case AggKind::kCount:
          break;
      }
    }
    attrs.push_back(Attribute{aggs[a].out_name, DataType::kDouble});
    cols.push_back(MakeDoubleBat(std::move(v)));
  }
  RMA_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(attrs)));
  return Relation::Make(std::move(schema), std::move(cols), r.name());
}

Result<Relation> SortBy(const Relation& r,
                        const std::vector<std::string>& keys) {
  RMA_ASSIGN_OR_RETURN(std::vector<int> idx, r.schema().IndicesOf(keys));
  std::vector<BatPtr> kb;
  for (int i : idx) kb.push_back(r.column(i));
  return r.TakeRows(bat_ops::ArgSort(kb));
}

Result<Relation> Distinct(const Relation& r) {
  const auto& cols = r.columns();
  bat_ops::RowIndex seen;
  std::vector<int64_t> keep;
  const int64_t n = r.num_rows();
  for (int64_t i = 0; i < n; ++i) {
    const uint64_t h = bat_ops::HashRow(cols, i);
    auto& cands = seen[h];
    bool dup = false;
    for (int64_t cand : cands) {
      if (bat_ops::EqualRows(cols, cand, cols, i)) {
        dup = true;
        break;
      }
    }
    if (!dup) {
      cands.push_back(i);
      keep.push_back(i);
    }
  }
  return r.TakeRows(keep);
}

Result<Relation> PivotCount(const Relation& r, const std::string& row_attr,
                            const std::string& col_attr) {
  RMA_ASSIGN_OR_RETURN(int ri, r.schema().IndexOf(row_attr));
  RMA_ASSIGN_OR_RETURN(int ci, r.schema().IndexOf(col_attr));
  const BatPtr& rows = r.column(ri);
  const BatPtr& cols = r.column(ci);
  // Distinct row / column values (sorted for deterministic output).
  bool unique = false;
  std::vector<int64_t> rperm = bat_ops::ArgSortUnique({rows}, &unique);
  std::vector<int64_t> rrep;  // first row index per distinct row value
  std::unordered_map<std::string, int64_t> row_id;
  for (int64_t p : rperm) {
    const std::string key = rows->GetString(p);
    if (row_id.emplace(key, static_cast<int64_t>(rrep.size())).second) {
      rrep.push_back(p);
    }
  }
  std::vector<int64_t> cperm = bat_ops::ArgSortUnique({cols}, &unique);
  std::vector<std::string> col_names;
  std::unordered_map<std::string, int64_t> col_id;
  for (int64_t p : cperm) {
    const std::string key = cols->GetString(p);
    if (col_id.emplace(key, static_cast<int64_t>(col_names.size())).second) {
      col_names.push_back(key);
    }
  }
  const int64_t nr = static_cast<int64_t>(rrep.size());
  const int64_t nc = static_cast<int64_t>(col_names.size());
  std::vector<std::vector<double>> counts(
      static_cast<size_t>(nc), std::vector<double>(static_cast<size_t>(nr), 0.0));
  const int64_t n = r.num_rows();
  for (int64_t i = 0; i < n; ++i) {
    const int64_t rid = row_id[rows->GetString(i)];
    const int64_t cid = col_id[cols->GetString(i)];
    counts[static_cast<size_t>(cid)][static_cast<size_t>(rid)] += 1.0;
  }
  std::vector<Attribute> attrs;
  std::vector<BatPtr> out_cols;
  attrs.push_back(Attribute{row_attr, rows->type()});
  out_cols.push_back(rows->Take(rrep));
  for (int64_t c = 0; c < nc; ++c) {
    attrs.push_back(Attribute{col_names[static_cast<size_t>(c)],
                              DataType::kDouble});
    out_cols.push_back(MakeDoubleBat(std::move(counts[static_cast<size_t>(c)])));
  }
  RMA_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(attrs)));
  return Relation::Make(std::move(schema), std::move(out_cols), r.name());
}

Result<Relation> UnionAll(const Relation& a, const Relation& b) {
  if (!(a.schema() == b.schema())) {
    return Status::Invalid("union: schemas differ");
  }
  std::vector<BatPtr> cols;
  for (int c = 0; c < a.num_columns(); ++c) {
    switch (a.schema().attribute(c).type) {
      case DataType::kInt64:
        cols.push_back(MakeInt64Bat(ConcatColumn<int64_t>(a, b, c)));
        break;
      case DataType::kDouble:
        cols.push_back(MakeDoubleBat(ConcatColumn<double>(a, b, c)));
        break;
      case DataType::kString:
        cols.push_back(MakeStringBat(ConcatColumn<std::string>(a, b, c)));
        break;
    }
  }
  return Relation::Make(a.schema(), std::move(cols), a.name());
}

Result<Relation> Limit(const Relation& r, int64_t offset, int64_t count) {
  if (offset < 0 || count < 0) return Status::Invalid("limit: negative bound");
  std::vector<int64_t> keep;
  const int64_t end = std::min(r.num_rows(), offset + count);
  for (int64_t i = offset; i < end; ++i) keep.push_back(i);
  return r.TakeRows(keep);
}

}  // namespace rma::rel
