#ifndef RMA_REL_OPERATORS_H_
#define RMA_REL_OPERATORS_H_

#include <string>
#include <vector>

#include "rel/expression.h"
#include "storage/relation.h"
#include "util/result.h"

namespace rma::rel {

/// Relational algebra over the column store. Together with the relational
/// matrix operations in src/core these implement the mixed workloads of
/// Sec. 5 and Sec. 8.6.

/// σ: rows where `predicate` evaluates to true.
Result<Relation> Select(const Relation& r, const ExprPtr& predicate);

/// π onto named attributes (fast path: shares column BATs, no copying).
Result<Relation> ProjectNames(const Relation& r,
                              const std::vector<std::string>& names);

/// Generalized π: one output column per (expression, name).
struct ProjectItem {
  ExprPtr expr;
  std::string name;
};
Result<Relation> Project(const Relation& r,
                         const std::vector<ProjectItem>& items);

/// ρ: renames attributes positionally (`new_names` covers all attributes).
Result<Relation> RenameAll(const Relation& r,
                           const std::vector<std::string>& new_names);

/// ρ: renames one attribute.
Result<Relation> Rename(const Relation& r, const std::string& old_name,
                        const std::string& new_name);

/// Equi-join (hash). Output schema is the concatenation of both schemas;
/// duplicate output names get a "_2" suffix on the right side.
Result<Relation> HashJoin(const Relation& l, const Relation& r,
                          const std::vector<std::string>& left_keys,
                          const std::vector<std::string>& right_keys);

/// Equi-join with key columns given by position (used by the SQL layer,
/// where joined schemas may contain duplicate names).
Result<Relation> HashJoinAt(const Relation& l, const Relation& r,
                            const std::vector<int>& left_keys,
                            const std::vector<int>& right_keys);

/// Cartesian product ×.
Result<Relation> CrossJoin(const Relation& l, const Relation& r);

/// Aggregation ϑ. `func` ∈ {COUNT, SUM, AVG, MIN, MAX}; `arg` is empty for
/// COUNT(*). Numeric aggregates produce DOUBLE (COUNT produces INT).
struct AggSpec {
  std::string func;
  std::string arg;       // attribute name; empty for COUNT(*)
  std::string out_name;  // result attribute name
};
Result<Relation> Aggregate(const Relation& r,
                           const std::vector<std::string>& group_by,
                           const std::vector<AggSpec>& aggs);

/// Sorts by `keys` ascending (stable).
Result<Relation> SortBy(const Relation& r, const std::vector<std::string>& keys);

/// Duplicate elimination over all attributes.
Result<Relation> Distinct(const Relation& r);

/// SQL PIVOT with COUNT: one output row per distinct `row_attr` value, one
/// DOUBLE column per distinct `col_attr` value (named by the value, sorted),
/// cells = number of matching input rows. Builds the DBLP publications
/// matrix of Sec. 8.6(3).
Result<Relation> PivotCount(const Relation& r, const std::string& row_attr,
                            const std::string& col_attr);

/// Bag union (schemas must match exactly).
Result<Relation> UnionAll(const Relation& a, const Relation& b);

/// Row range [offset, offset+count) — SQL LIMIT/OFFSET.
Result<Relation> Limit(const Relation& r, int64_t offset, int64_t count);

}  // namespace rma::rel

#endif  // RMA_REL_OPERATORS_H_
