#include "util/string_util.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace rma {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string FormatDouble(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace rma
