#ifndef RMA_UTIL_TIMER_H_
#define RMA_UTIL_TIMER_H_

#include <chrono>

namespace rma {

/// Wall-clock stopwatch used by the benchmark harness.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction / last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rma

#endif  // RMA_UTIL_TIMER_H_
