#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace rma {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid";
    case StatusCode::kKeyError:
      return "KeyError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNumericError:
      return "NumericError";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kUnknownError:
      return "Unknown";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code());
  out += ": ";
  out += message();
  return out;
}

void Status::Abort() const {
  if (ok()) return;
  std::fprintf(stderr, "fatal status: %s\n", ToString().c_str());
  std::abort();
}

}  // namespace rma
