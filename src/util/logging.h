#ifndef RMA_UTIL_LOGGING_H_
#define RMA_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace rma::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "%s:%d: check failed: %s\n", file, line, expr);
  std::abort();
}

}  // namespace rma::internal

/// Invariant check, active in all build types. Use for programmer errors
/// (library bugs), not user-facing validation (which returns Status).
#define RMA_CHECK(expr)                                        \
  do {                                                         \
    if (!(expr)) ::rma::internal::CheckFailed(__FILE__, __LINE__, #expr); \
  } while (0)

#ifdef NDEBUG
#define RMA_DCHECK(expr) \
  do {                   \
  } while (0)
#else
#define RMA_DCHECK(expr) RMA_CHECK(expr)
#endif

#endif  // RMA_UTIL_LOGGING_H_
