#ifndef RMA_UTIL_SOCKET_H_
#define RMA_UTIL_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/result.h"

namespace rma {

/// RAII wrapper over a connected TCP socket (POSIX). Move-only; the
/// descriptor is closed on destruction. All transfer methods are blocking
/// and loop over partial reads/writes, so a frame either transfers whole or
/// fails with IoError — the framing layer (server/wire.h) never sees a
/// short count. Writes use MSG_NOSIGNAL: a peer that disconnected
/// mid-stream surfaces as IoError("connection reset"), never SIGPIPE.
///
/// Thread-safety: one thread may Send while another Recvs (the two
/// directions are independent), but each direction belongs to one thread at
/// a time. Shutdown() is safe to call from any thread while another is
/// blocked in Recv/Send — that blocked call then fails with IoError, which
/// is exactly how Server::Stop (past its drain deadline) unblocks session
/// threads stalled in a half-received frame or a send to a reader that
/// stopped consuming.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Sends exactly `len` bytes (looping over partial writes).
  Status SendAll(const void* data, size_t len);

  /// Receives exactly `len` bytes. A peer close mid-message is IoError;
  /// a clean close *before the first byte* is IoError whose message starts
  /// with "connection closed" (callers use this to tell an orderly
  /// disconnect from a torn frame).
  Status RecvAll(void* data, size_t len);

  /// Waits up to `timeout_ms` for the socket to become readable (data or
  /// EOF). Ok(true) = readable, Ok(false) = timed out. Lets a server
  /// session poll for the next request while periodically checking the
  /// drain flag, without tearing frames the way a receive timeout would.
  Result<bool> WaitReadable(int timeout_ms);

  /// Shuts down both directions without closing the descriptor: any thread
  /// blocked in Recv/Send fails promptly. Idempotent.
  void Shutdown();

  /// Closes the descriptor. Idempotent.
  void Close();

 private:
  int fd_ = -1;
};

/// A listening TCP socket bound to `host`:`port`. Port 0 binds an ephemeral
/// port; `port()` reports the actual one (tests and the smoke script bind 0
/// and parse the server's startup line).
class ListenSocket {
 public:
  ListenSocket() = default;
  ~ListenSocket() { Close(); }

  ListenSocket(ListenSocket&& other) noexcept;
  ListenSocket& operator=(ListenSocket&& other) noexcept;
  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;

  /// Binds and listens. SO_REUSEADDR is set so a restarted server can
  /// rebind its port while old connections linger in TIME_WAIT.
  static Result<ListenSocket> Listen(const std::string& host, uint16_t port,
                                     int backlog = 64);

  /// Blocks for the next connection. Fails with IoError after Shutdown()
  /// from another thread — the accept-loop exit path.
  Result<Socket> Accept();

  bool valid() const { return fd_ >= 0; }
  uint16_t port() const { return port_; }

  /// Unblocks a concurrent Accept (it fails with IoError) without closing
  /// or invalidating the descriptor. Safe to call from any thread while
  /// another is blocked in Accept; idempotent.
  void Shutdown();

  /// Closes the descriptor. NOT safe against a concurrent Accept — call
  /// Shutdown() first and join the accepting thread (Server::Stop does
  /// exactly this), so the descriptor can't be recycled under a racing
  /// accept(2). Idempotent.
  void Close();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

/// Connects to `host`:`port` (numeric IPv4 or a resolvable name).
Result<Socket> ConnectSocket(const std::string& host, uint16_t port);

}  // namespace rma

#endif  // RMA_UTIL_SOCKET_H_
