#ifndef RMA_UTIL_STRING_UTIL_H_
#define RMA_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace rma {

/// Joins `parts` with `sep` ("a", "b" -> "a,b").
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `s` on `sep` (no trimming; empty fields preserved).
std::vector<std::string> Split(std::string_view s, char sep);

/// Removes leading/trailing whitespace.
std::string Trim(std::string_view s);

/// ASCII lower-casing (SQL keywords are case-insensitive).
std::string ToLower(std::string_view s);
std::string ToUpper(std::string_view s);

/// Case-insensitive equality for ASCII strings.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Formats a double the way column names derived from values are printed:
/// integral values render without a decimal point ("7"), others compactly
/// ("7.25"). Used by the column cast (▽U) when order values are numeric.
std::string FormatDouble(double v);

}  // namespace rma

#endif  // RMA_UTIL_STRING_UTIL_H_
