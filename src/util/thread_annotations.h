#ifndef RMA_UTIL_THREAD_ANNOTATIONS_H_
#define RMA_UTIL_THREAD_ANNOTATIONS_H_

/// Portable wrappers over Clang's thread-safety (capability) analysis
/// attributes. Under clang with `-Wthread-safety` the annotations turn lock
/// discipline into compile-time checking: a field marked RMA_GUARDED_BY(mu)
/// may only be touched while `mu` is held, a function marked
/// RMA_REQUIRES(mu) may only be called with `mu` held, and the analysis
/// verifies *every* call path — not just the interleavings a test happens to
/// execute. On GCC/MSVC every macro expands to nothing, so the annotations
/// cost nothing where they cannot be checked.
///
/// The analysis only understands capability-annotated lock types, and
/// libstdc++'s std::mutex carries no annotations — use the annotated
/// wrappers in util/mutex.h (rma::Mutex, rma::SharedMutex, rma::MutexLock,
/// rma::CondVar) instead of the std types for any mutex whose guarded state
/// should be machine-checked.
///
/// See docs/STATIC_ANALYSIS.md for how to read the diagnostics and when
/// RMA_NO_THREAD_SAFETY_ANALYSIS is acceptable.

#if defined(__clang__)
#define RMA_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define RMA_THREAD_ANNOTATION_(x)  // no-op outside clang
#endif

/// Declares a class to be a capability (a lock type). The string names the
/// capability kind in diagnostics, e.g. RMA_CAPABILITY("mutex").
#define RMA_CAPABILITY(x) RMA_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII class that acquires a capability in its constructor and
/// releases it in its destructor (std::lock_guard shape).
#define RMA_SCOPED_CAPABILITY RMA_THREAD_ANNOTATION_(scoped_lockable)

/// The annotated field may only be accessed while the given capability is
/// held: `int hits_ RMA_GUARDED_BY(mu_);`.
#define RMA_GUARDED_BY(x) RMA_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer variant: the *pointee* is guarded (the pointer itself is not).
#define RMA_PT_GUARDED_BY(x) RMA_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Lock-ordering documentation: this capability must be acquired before /
/// after the listed ones; the analysis reports inversions.
#define RMA_ACQUIRED_BEFORE(...) \
  RMA_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define RMA_ACQUIRED_AFTER(...) \
  RMA_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// The function may only be called while holding the listed capabilities
/// (exclusively / shared). The convention in this codebase: helpers named
/// `*Locked` carry RMA_REQUIRES on the mutex they expect held.
#define RMA_REQUIRES(...) \
  RMA_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define RMA_REQUIRES_SHARED(...) \
  RMA_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// The function acquires the listed capabilities (exclusively / shared) and
/// does not release them before returning.
#define RMA_ACQUIRE(...) \
  RMA_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define RMA_ACQUIRE_SHARED(...) \
  RMA_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// The function releases the listed capabilities (which must be held on
/// entry). RMA_RELEASE expects an exclusive hold, RMA_RELEASE_SHARED a
/// shared one; RMA_RELEASE_GENERIC releases either mode (what a scoped
/// lock whose hold may be shared must use in its destructor).
#define RMA_RELEASE(...) \
  RMA_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define RMA_RELEASE_SHARED(...) \
  RMA_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define RMA_RELEASE_GENERIC(...) \
  RMA_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))

/// The function tries to acquire the capability and returns `ret` on
/// success: `bool TryLock() RMA_TRY_ACQUIRE(true);`.
#define RMA_TRY_ACQUIRE(...) \
  RMA_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define RMA_TRY_ACQUIRE_SHARED(...) \
  RMA_THREAD_ANNOTATION_(try_acquire_shared_capability(__VA_ARGS__))

/// The function must be called *without* the listed capabilities held
/// (non-reentrant public entry points of a class whose methods self-lock).
#define RMA_EXCLUDES(...) RMA_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (injects the fact into the
/// analysis without acquiring).
#define RMA_ASSERT_CAPABILITY(x) \
  RMA_THREAD_ANNOTATION_(assert_capability(x))
#define RMA_ASSERT_SHARED_CAPABILITY(x) \
  RMA_THREAD_ANNOTATION_(assert_shared_capability(x))

/// The function returns a reference to the given capability (accessors).
#define RMA_RETURN_CAPABILITY(x) RMA_THREAD_ANNOTATION_(lock_returned(x))

/// Opts a function out of the analysis entirely. Last resort: prefer
/// restructuring into RMA_REQUIRES-annotated `*Locked` helpers; any use must
/// carry a comment naming the invariant the analysis cannot express, and
/// none are permitted in core/ or sql/ (enforced by review + the
/// STATIC_ANALYSIS.md contract).
#define RMA_NO_THREAD_SAFETY_ANALYSIS \
  RMA_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // RMA_UTIL_THREAD_ANNOTATIONS_H_
