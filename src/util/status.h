#ifndef RMA_UTIL_STATUS_H_
#define RMA_UTIL_STATUS_H_

#include <memory>
#include <string>
#include <utility>

namespace rma {

/// Error categories used throughout the library (Arrow/RocksDB style).
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,   ///< Malformed input (bad schema, wrong arity, ...).
  kKeyError = 2,          ///< Lookup failure (unknown attribute/table).
  kTypeError = 3,         ///< Value of the wrong data type.
  kNotImplemented = 4,    ///< Feature intentionally absent.
  kOutOfRange = 5,        ///< Index outside the valid domain.
  kNumericError = 6,      ///< Singular matrix, non-convergence, ...
  kResourceExhausted = 7, ///< Memory/size budget exceeded.
  kIoError = 8,           ///< File read/write failure.
  kParseError = 9,        ///< SQL/CSV syntax error.
  kNotFound = 10,         ///< Named entity absent (DROP of a missing table).
  kUnknownError = 11,
};

/// Outcome of a fallible operation. Cheap to copy in the OK case (no
/// allocation); error states carry a code and a message.
///
/// The library does not use exceptions: every fallible public entry point
/// returns `Status` or `Result<T>` (see result.h).
///
/// The class is [[nodiscard]]: a dropped return is a compile warning
/// (-Werror in CI), because a silently ignored error from Register/Drop/
/// batch internals is a corruption vector once callers retry on failure.
/// Intentional discards must be explicit: `st.IgnoreError()`.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      state_ = std::make_shared<State>(State{code, std::move(msg)});
    }
  }

  static Status OK() { return Status(); }
  static Status Invalid(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status KeyError(std::string msg) {
    return Status(StatusCode::kKeyError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NumericError(std::string msg) {
    return Status(StatusCode::kNumericError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  const std::string& message() const {
    static const std::string kEmpty;
    return ok() ? kEmpty : state_->msg;
  }

  bool IsInvalid() const { return code() == StatusCode::kInvalidArgument; }
  bool IsKeyError() const { return code() == StatusCode::kKeyError; }
  bool IsTypeError() const { return code() == StatusCode::kTypeError; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsNumericError() const { return code() == StatusCode::kNumericError; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsIoError() const { return code() == StatusCode::kIoError; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }

  /// Human-readable rendering, e.g. "Invalid: order schema is not a key".
  std::string ToString() const;

  /// Aborts the process if the status is not OK. Use in tests/examples only.
  void Abort() const;

  /// Explicitly discards the status. The only sanctioned way to drop a
  /// Status on the floor — it makes "this error is deliberately ignored"
  /// grep-able and keeps [[nodiscard]] clean at the call site.
  void IgnoreError() const {}

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  std::shared_ptr<const State> state_;  // nullptr == OK
};

/// Short name for a status code, e.g. "Invalid".
const char* StatusCodeName(StatusCode code);

}  // namespace rma

#endif  // RMA_UTIL_STATUS_H_
