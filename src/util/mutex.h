#ifndef RMA_UTIL_MUTEX_H_
#define RMA_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/thread_annotations.h"

namespace rma {

class CondVar;

/// Capability-annotated wrapper over std::mutex. libstdc++'s std types carry
/// no thread-safety attributes, so clang's analysis cannot reason about
/// them; every mutex in src/ whose guarded state should be machine-checked
/// is one of these instead. Zero overhead: the wrapper is a std::mutex plus
/// attributes that compile to nothing.
class RMA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() RMA_ACQUIRE() { mu_.lock(); }
  void Unlock() RMA_RELEASE() { mu_.unlock(); }
  bool TryLock() RMA_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Capability-annotated wrapper over std::shared_mutex (reader/writer).
class RMA_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() RMA_ACQUIRE() { mu_.lock(); }
  void Unlock() RMA_RELEASE() { mu_.unlock(); }
  void LockShared() RMA_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RMA_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock over Mutex (std::lock_guard shape).
class RMA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) RMA_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RMA_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII exclusive lock over SharedMutex.
class RMA_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) RMA_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() RMA_RELEASE() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared (reader) lock over SharedMutex.
class RMA_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) RMA_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  // Generic release: the scoped capability is held *shared*, and clang
  // rejects releasing a shared hold with the exclusive release attribute.
  ~ReaderMutexLock() RMA_RELEASE_GENERIC() { mu_.UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable paired with rma::Mutex. The Wait family takes the
/// Mutex itself and is annotated RMA_REQUIRES(mu): the caller must hold the
/// lock, and the analysis treats it as held across the wait (the internal
/// release/re-acquire is invisible — the standard fiction every annotated
/// condvar uses, cf. absl::CondVar).
///
/// The analysis checks a lambda body as its own function, so it cannot see
/// that a predicate lambda passed into a wait runs under the lock. Callers
/// therefore write the predicate loop out explicitly —
///
///   MutexLock lock(mu_);
///   while (!stop_ && queue_.empty()) cv_.Wait(mu_);
///
/// — which keeps every guarded read inside the function that holds the lock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) RMA_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller's scoped lock still owns the mutex
  }

  template <typename Rep, typename Period>
  std::cv_status WaitFor(Mutex& mu,
                         const std::chrono::duration<Rep, Period>& timeout)
      RMA_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lock, timeout);
    lock.release();
    return status;
  }

  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      RMA_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace rma

#endif  // RMA_UTIL_MUTEX_H_
