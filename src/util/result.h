#ifndef RMA_UTIL_RESULT_H_
#define RMA_UTIL_RESULT_H_

#include <utility>
#include <variant>

#include "util/logging.h"
#include "util/status.h"

namespace rma {

/// Either a value of type `T` or an error `Status` (Arrow-style).
///
/// Usage:
///   Result<Relation> r = Inv(rel, {"User"});
///   if (!r.ok()) return r.status();
///   const Relation& rel = *r;
/// [[nodiscard]]: dropping a Result discards both the value and the error;
/// see the Status class comment for the discipline.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit conversion from a value.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit conversion from a (non-OK) status.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT(runtime/explicit)
    RMA_DCHECK(!std::get<Status>(repr_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(repr_);
  }

  /// Returns the contained value; undefined behaviour if `!ok()`.
  T& ValueUnsafe() & { return std::get<T>(repr_); }
  const T& ValueUnsafe() const& { return std::get<T>(repr_); }
  T&& ValueUnsafe() && { return std::get<T>(std::move(repr_)); }

  /// Returns the contained value or aborts with the error (tests/examples).
  T ValueOrDie() && {
    status().Abort();
    return std::get<T>(std::move(repr_));
  }
  const T& ValueOrDie() const& {
    status().Abort();
    return std::get<T>(repr_);
  }

  T& operator*() & { return ValueUnsafe(); }
  const T& operator*() const& { return ValueUnsafe(); }
  T* operator->() { return &ValueUnsafe(); }
  const T* operator->() const { return &ValueUnsafe(); }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace rma

/// Propagates a non-OK status from an expression returning `Status`.
#define RMA_RETURN_NOT_OK(expr)                 \
  do {                                          \
    ::rma::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                  \
  } while (0)

#define RMA_CONCAT_IMPL(a, b) a##b
#define RMA_CONCAT(a, b) RMA_CONCAT_IMPL(a, b)

/// Evaluates an expression returning `Result<T>`, propagating errors;
/// on success binds the value to `lhs` (by move).
#define RMA_ASSIGN_OR_RETURN(lhs, expr)                            \
  RMA_ASSIGN_OR_RETURN_IMPL(RMA_CONCAT(_res_, __LINE__), lhs, expr)

#define RMA_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr)  \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).ValueUnsafe();

#endif  // RMA_UTIL_RESULT_H_
