#include "util/socket.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace rma {

namespace {

std::string ErrnoMessage(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Status Socket::SendAll(const void* data, size_t len) {
  const char* p = static_cast<const char*>(data);
  size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd_, p + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoMessage("send"));
    }
    if (n == 0) return Status::IoError("send: connection reset");
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status Socket::RecvAll(void* data, size_t len) {
  char* p = static_cast<char*>(data);
  size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd_, p + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoMessage("recv"));
    }
    if (n == 0) {
      return got == 0 ? Status::IoError("connection closed by peer")
                      : Status::IoError("connection closed mid-message");
    }
    got += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<bool> Socket::WaitReadable(int timeout_ms) {
  pollfd pfd;
  pfd.fd = fd_;
  pfd.events = POLLIN;
  pfd.revents = 0;
  while (true) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return true;  // readable, EOF, or error — recv() will tell
    if (rc == 0) return false;
    if (errno == EINTR) continue;
    return Status::IoError(ErrnoMessage("poll"));
  }
}

void Socket::Shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

ListenSocket::ListenSocket(ListenSocket&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
  other.port_ = 0;
}

ListenSocket& ListenSocket::operator=(ListenSocket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

Result<ListenSocket> ListenSocket::Listen(const std::string& host,
                                          uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError(ErrnoMessage("socket"));

  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::Invalid("not an IPv4 address: " + host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status st = Status::IoError(ErrnoMessage("bind"));
    ::close(fd);
    return st;
  }
  if (::listen(fd, backlog) != 0) {
    const Status st = Status::IoError(ErrnoMessage("listen"));
    ::close(fd);
    return st;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    const Status st = Status::IoError(ErrnoMessage("getsockname"));
    ::close(fd);
    return st;
  }
  ListenSocket out;
  out.fd_ = fd;
  out.port_ = ntohs(addr.sin_port);
  return out;
}

Result<Socket> ListenSocket::Accept() {
  while (true) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      // Result frames are small and latency matters for the request/reply
      // half of the protocol; row-batch frames are large enough that
      // Nagle's algorithm buys nothing.
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    return Status::IoError(ErrnoMessage("accept"));
  }
}

void ListenSocket::Shutdown() {
  // Only the syscall — fd_ stays valid, so a thread concurrently blocked in
  // accept(fd_) reads an unchanged value (no data race) and gets EINVAL.
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void ListenSocket::Close() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Socket> ConnectSocket(const std::string& host, uint16_t port) {
  addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int rc =
      ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints, &res);
  if (rc != 0) {
    return Status::IoError("getaddrinfo(" + host + "): " + gai_strerror(rc));
  }
  Status last = Status::IoError("no addresses for " + host);
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Status::IoError(ErrnoMessage("socket"));
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      ::freeaddrinfo(res);
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Socket(fd);
    }
    last = Status::IoError(ErrnoMessage("connect"));
    ::close(fd);
  }
  ::freeaddrinfo(res);
  return last;
}

}  // namespace rma
