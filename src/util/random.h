#ifndef RMA_UTIL_RANDOM_H_
#define RMA_UTIL_RANDOM_H_

#include <cstdint>
#include <random>

namespace rma {

/// Deterministic pseudo-random generator used by workload generators and
/// property tests. A fixed seed makes experiments and tests reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : gen_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(gen_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(gen_);
  }

  /// Bernoulli draw with probability `p` of true.
  bool Bernoulli(double p) { return std::bernoulli_distribution(p)(gen_); }

  /// Normal draw.
  double Normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(gen_);
  }

  std::mt19937_64& engine() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

}  // namespace rma

#endif  // RMA_UTIL_RANDOM_H_
