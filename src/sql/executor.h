#ifndef RMA_SQL_EXECUTOR_H_
#define RMA_SQL_EXECUTOR_H_

#include "core/options.h"
#include "sql/ast.h"
#include "storage/relation.h"
#include "util/result.h"

namespace rma {
class ExecContext;
}

namespace rma::sql {

class Database;

/// Evaluates an analyzed SELECT statement against the catalog. The executor
/// interprets the algebra directly: FROM (joins and relational matrix
/// operations), WHERE, GROUP BY + aggregates, SELECT projection, ORDER BY,
/// LIMIT. All relational matrix operations of one statement share an
/// execution context (planner + prepared-argument cache).
Result<Relation> ExecuteSelect(const Database& db, const SelectStmt& stmt,
                               const RmaOptions& opts);

/// Context-sharing variant (one context across nested statements).
Result<Relation> ExecuteSelect(const Database& db, const SelectStmt& stmt,
                               ExecContext* ctx);

/// EXPLAIN: renders the physical plan of the statement — the planned
/// relational matrix operations (chosen kernels, stages, cost estimates,
/// prepared-argument reuse), the cross-algebra rewrites that fired, and the
/// relational pipeline around them — as a single-column relation of plan
/// lines, recursing into FROM-clause subqueries. Top-level matrix
/// operations do not run; leaf relations are bound for their shapes, which
/// executes subqueries nested *inside* a matrix-operation argument.
Result<Relation> ExplainSelect(const Database& db, const SelectStmt& stmt,
                               const RmaOptions& opts);

}  // namespace rma::sql

#endif  // RMA_SQL_EXECUTOR_H_
