#ifndef RMA_SQL_EXECUTOR_H_
#define RMA_SQL_EXECUTOR_H_

#include "core/options.h"
#include "sql/ast.h"
#include "storage/relation.h"
#include "util/result.h"

namespace rma::sql {

class Database;

/// Evaluates an analyzed SELECT statement against the catalog. The executor
/// interprets the algebra directly: FROM (joins and relational matrix
/// operations), WHERE, GROUP BY + aggregates, SELECT projection, ORDER BY,
/// LIMIT.
Result<Relation> ExecuteSelect(const Database& db, const SelectStmt& stmt,
                               const RmaOptions& opts);

}  // namespace rma::sql

#endif  // RMA_SQL_EXECUTOR_H_
