#ifndef RMA_SQL_EXECUTOR_H_
#define RMA_SQL_EXECUTOR_H_

#include <string>

#include "core/options.h"
#include "sql/ast.h"
#include "storage/relation.h"
#include "util/result.h"

namespace rma {
class ExecContext;
}

namespace rma::sql {

class Database;

/// Evaluates an analyzed SELECT statement against the catalog. The executor
/// interprets the algebra directly: FROM (joins and relational matrix
/// operations), WHERE, GROUP BY + aggregates, SELECT projection, ORDER BY,
/// LIMIT. All relational matrix operations of one statement share an
/// execution context (planner + prepared-argument cache).
Result<Relation> ExecuteSelect(const Database& db, const SelectStmt& stmt,
                               const RmaOptions& opts);

/// Context-sharing variant (one context across nested statements).
Result<Relation> ExecuteSelect(const Database& db, const SelectStmt& stmt,
                               ExecContext* ctx);

/// Plan-cache-aware execution: consults the database's QueryCache under
/// `normalized` (QueryCache::NormalizeStatement of the statement text)
/// with the current identity snapshot of the statement's read tables (the
/// per-table hit rule; the catalog version is the fallback). On a hit,
/// every FROM-clause relational matrix operation is served from its cached
/// rewritten expression — no rebinding, rewriting, or planning; with warm
/// prepared arguments the statement also skips every sort. On a miss the
/// statement executes normally, the identities it binds are recorded, and
/// the plan is stored for the next run. The context should borrow the
/// database's cache (Database wires this up).
Result<Relation> ExecuteSelectCached(const Database& db, const SelectStmt& stmt,
                                     const std::string& normalized,
                                     ExecContext* ctx);

/// EXPLAIN: renders the physical plan of the statement — the planned
/// relational matrix operations (chosen kernels, stages, cost estimates,
/// prepared-argument reuse), the cross-algebra rewrites that fired, and the
/// relational pipeline around them — as a single-column relation of plan
/// lines, recursing into FROM-clause subqueries. Top-level matrix
/// operations do not run; leaf relations are bound for their shapes, which
/// executes subqueries nested *inside* a matrix-operation argument.
Result<Relation> ExplainSelect(const Database& db, const SelectStmt& stmt,
                               const RmaOptions& opts);

/// EXPLAIN [ANALYZE] over a SELECT or CREATE TABLE AS statement
/// (stmt.kind == kExplain). Plain EXPLAIN renders the relational pipeline
/// and physical plans without executing (a CREATE TABLE AS is *not*
/// registered). EXPLAIN ANALYZE executes through the plan cache, renders
/// the statement plan that served (or was recorded by) the run, and appends
/// an execution section: each operation's measured per-stage RmaStats, the
/// statement's plan-cache and prepared-cache provenance, row count, and
/// total wall time. A CTAS *is* registered (side effects are part of
/// execution) and consults the plan cache like any statement —
/// invalidation is per-table, so its own registration only evicts the
/// stored plan when the select reads the replaced table. `sql` is the
/// original statement text (plan-cache key material). `session_opts`, when
/// non-null, overrides the database's options (server sessions route their
/// per-session RmaOptions through it); the explain still runs on a scratch
/// context so its execution section reports exactly this statement.
Result<Relation> ExplainStatement(Database& db, const Statement& stmt,
                                  const std::string& sql,
                                  const RmaOptions* session_opts = nullptr);

}  // namespace rma::sql

#endif  // RMA_SQL_EXECUTOR_H_
