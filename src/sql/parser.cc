#include "sql/parser.h"

#include <unordered_set>

#include "sql/lexer.h"
#include "util/string_util.h"

namespace rma::sql {

namespace {

const std::unordered_set<std::string>& ReservedWords() {
  static const std::unordered_set<std::string> kWords = {
      "SELECT", "FROM",  "WHERE", "GROUP", "BY",    "ORDER", "ASC",
      "DESC",   "LIMIT", "AS",    "ON",    "JOIN",  "INNER", "CROSS",
      "AND",    "OR",    "NOT",   "CREATE", "TABLE", "DROP", "EXPLAIN"};
  return kWords;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseStatement() {
    Statement stmt;
    if (IsKeyword("CREATE")) {
      Advance();
      RMA_RETURN_NOT_OK(ExpectKeyword("TABLE"));
      RMA_ASSIGN_OR_RETURN(stmt.table_name, ExpectIdent());
      RMA_RETURN_NOT_OK(ExpectKeyword("AS"));
      RMA_ASSIGN_OR_RETURN(stmt.select, ParseSelectStmt());
      stmt.kind = Statement::Kind::kCreateTableAs;
    } else if (IsKeyword("DROP")) {
      Advance();
      RMA_RETURN_NOT_OK(ExpectKeyword("TABLE"));
      RMA_ASSIGN_OR_RETURN(stmt.table_name, ExpectIdent());
      stmt.kind = Statement::Kind::kDropTable;
    } else if (IsKeyword("EXPLAIN")) {
      Advance();
      if (IsKeyword("ANALYZE")) {
        Advance();
        stmt.analyze = true;
      }
      if (IsKeyword("CREATE")) {
        Advance();
        RMA_RETURN_NOT_OK(ExpectKeyword("TABLE"));
        RMA_ASSIGN_OR_RETURN(stmt.table_name, ExpectIdent());
        RMA_RETURN_NOT_OK(ExpectKeyword("AS"));
        stmt.explain_create = true;
      }
      RMA_ASSIGN_OR_RETURN(stmt.select, ParseSelectStmt());
      stmt.kind = Statement::Kind::kExplain;
    } else {
      RMA_ASSIGN_OR_RETURN(stmt.select, ParseSelectStmt());
      stmt.kind = Statement::Kind::kSelect;
    }
    if (IsSymbol(";")) Advance();
    if (Peek().kind != TokenKind::kEnd) {
      return Status::ParseError("trailing input after statement: '" +
                                Peek().text + "'");
    }
    return stmt;
  }

  Result<SelectStmtPtr> ParseSelectStmt() {
    RMA_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    auto stmt = std::make_shared<SelectStmt>();
    // Select list.
    while (true) {
      SelectItem item;
      if (IsSymbol("*")) {
        Advance();
        item.expr = SqlExpr::Star();
      } else {
        RMA_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (IsKeyword("AS")) {
          Advance();
          RMA_ASSIGN_OR_RETURN(item.alias, ExpectIdent());
        } else if (Peek().kind == TokenKind::kIdent && !IsReserved(Peek())) {
          item.alias = Peek().text;
          Advance();
        }
      }
      stmt->items.push_back(std::move(item));
      if (!IsSymbol(",")) break;
      Advance();
    }
    RMA_RETURN_NOT_OK(ExpectKeyword("FROM"));
    RMA_ASSIGN_OR_RETURN(stmt->from, ParseFrom());
    if (IsKeyword("WHERE")) {
      Advance();
      RMA_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    if (IsKeyword("GROUP")) {
      Advance();
      RMA_RETURN_NOT_OK(ExpectKeyword("BY"));
      while (true) {
        RMA_ASSIGN_OR_RETURN(SqlExprPtr e, ParseExpr());
        stmt->group_by.push_back(std::move(e));
        if (!IsSymbol(",")) break;
        Advance();
      }
    }
    if (IsKeyword("ORDER")) {
      Advance();
      RMA_RETURN_NOT_OK(ExpectKeyword("BY"));
      while (true) {
        OrderItem item;
        RMA_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (IsKeyword("ASC")) {
          Advance();
        } else if (IsKeyword("DESC")) {
          Advance();
          item.ascending = false;
        }
        stmt->order_by.push_back(std::move(item));
        if (!IsSymbol(",")) break;
        Advance();
      }
    }
    if (IsKeyword("LIMIT")) {
      Advance();
      if (Peek().kind != TokenKind::kInt) {
        return Status::ParseError("LIMIT expects an integer");
      }
      stmt->limit = Peek().int_value;
      Advance();
    }
    return stmt;
  }

 private:
  // --- FROM clause ----------------------------------------------------------

  Result<TableRefPtr> ParseFrom() {
    RMA_ASSIGN_OR_RETURN(TableRefPtr left, ParseTableRef());
    while (true) {
      if (IsSymbol(",") && LooksLikeTableRefAfterComma()) {
        Advance();
        RMA_ASSIGN_OR_RETURN(TableRefPtr right, ParseTableRef());
        left = MakeJoin(TableRef::JoinKind::kCross, left, right, nullptr);
        continue;
      }
      if (IsKeyword("CROSS")) {
        Advance();
        RMA_RETURN_NOT_OK(ExpectKeyword("JOIN"));
        RMA_ASSIGN_OR_RETURN(TableRefPtr right, ParseTableRef());
        left = MakeJoin(TableRef::JoinKind::kCross, left, right, nullptr);
        continue;
      }
      if (IsKeyword("INNER") || IsKeyword("JOIN")) {
        if (IsKeyword("INNER")) Advance();
        RMA_RETURN_NOT_OK(ExpectKeyword("JOIN"));
        RMA_ASSIGN_OR_RETURN(TableRefPtr right, ParseTableRef());
        RMA_RETURN_NOT_OK(ExpectKeyword("ON"));
        RMA_ASSIGN_OR_RETURN(SqlExprPtr on, ParseExpr());
        left = MakeJoin(TableRef::JoinKind::kInner, left, right, std::move(on));
        continue;
      }
      break;
    }
    return left;
  }

  bool LooksLikeTableRefAfterComma() {
    // In FROM, a comma always introduces another table ref in this grammar.
    return true;
  }

  static TableRefPtr MakeJoin(TableRef::JoinKind kind, TableRefPtr l,
                              TableRefPtr r, SqlExprPtr on) {
    auto j = std::make_shared<TableRef>();
    j->kind = TableRef::Kind::kJoin;
    j->join_kind = kind;
    j->left = std::move(l);
    j->right = std::move(r);
    j->on = std::move(on);
    return j;
  }

  Result<TableRefPtr> ParseTableRef() {
    RMA_ASSIGN_OR_RETURN(TableRefPtr ref, ParseTableRefPrimary());
    // Optional alias.
    if (IsKeyword("AS")) {
      Advance();
      RMA_ASSIGN_OR_RETURN(ref->alias, ExpectIdent());
    } else if (Peek().kind == TokenKind::kIdent && !IsReserved(Peek())) {
      ref->alias = Peek().text;
      Advance();
    }
    return ref;
  }

  Result<TableRefPtr> ParseTableRefPrimary() {
    if (IsSymbol("(")) {
      Advance();
      RMA_ASSIGN_OR_RETURN(SelectStmtPtr sub, ParseSelectStmt());
      RMA_RETURN_NOT_OK(ExpectSymbol(")"));
      auto ref = std::make_shared<TableRef>();
      ref->kind = TableRef::Kind::kSubquery;
      ref->subquery = std::move(sub);
      return ref;
    }
    if (Peek().kind != TokenKind::kIdent) {
      return Status::ParseError("expected table reference, got '" +
                                Peek().text + "'");
    }
    const std::string name = Peek().text;
    // RMA table function? (INV(...), MMU(...), ...)
    auto op = ParseMatrixOp(name);
    if (op.ok() && PeekAt(1).kind == TokenKind::kSymbol &&
        PeekAt(1).text == "(") {
      Advance();  // op name
      Advance();  // (
      auto ref = std::make_shared<TableRef>();
      ref->kind = TableRef::Kind::kRmaOp;
      ref->op = *op;
      while (true) {
        RmaArg arg;
        RMA_ASSIGN_OR_RETURN(arg.table, ParseTableRef());
        RMA_RETURN_NOT_OK(ExpectKeyword("BY"));
        if (IsSymbol("(")) {
          Advance();
          while (true) {
            RMA_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
            arg.order.push_back(std::move(col));
            if (!IsSymbol(",")) break;
            Advance();
          }
          RMA_RETURN_NOT_OK(ExpectSymbol(")"));
        } else {
          RMA_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
          arg.order.push_back(std::move(col));
        }
        ref->rma_args.push_back(std::move(arg));
        if (!IsSymbol(",")) break;
        Advance();
      }
      RMA_RETURN_NOT_OK(ExpectSymbol(")"));
      const OpInfo& info = GetOpInfo(ref->op);
      if (static_cast<int>(ref->rma_args.size()) != info.arity) {
        return Status::ParseError(std::string(info.name) + " expects " +
                                  std::to_string(info.arity) + " argument(s)");
      }
      return ref;
    }
    // Plain table.
    Advance();
    auto ref = std::make_shared<TableRef>();
    ref->kind = TableRef::Kind::kTable;
    ref->table_name = name;
    return ref;
  }

  // --- expressions -----------------------------------------------------------

  Result<SqlExprPtr> ParseExpr() { return ParseOr(); }

  Result<SqlExprPtr> ParseOr() {
    RMA_ASSIGN_OR_RETURN(SqlExprPtr lhs, ParseAnd());
    while (IsKeyword("OR")) {
      Advance();
      RMA_ASSIGN_OR_RETURN(SqlExprPtr rhs, ParseAnd());
      lhs = SqlExpr::Binary("OR", std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<SqlExprPtr> ParseAnd() {
    RMA_ASSIGN_OR_RETURN(SqlExprPtr lhs, ParseNot());
    while (IsKeyword("AND")) {
      Advance();
      RMA_ASSIGN_OR_RETURN(SqlExprPtr rhs, ParseNot());
      lhs = SqlExpr::Binary("AND", std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<SqlExprPtr> ParseNot() {
    if (IsKeyword("NOT")) {
      Advance();
      RMA_ASSIGN_OR_RETURN(SqlExprPtr x, ParseNot());
      return SqlExpr::Unary("NOT", std::move(x));
    }
    return ParseComparison();
  }

  Result<SqlExprPtr> ParseComparison() {
    RMA_ASSIGN_OR_RETURN(SqlExprPtr lhs, ParseAddSub());
    if (Peek().kind == TokenKind::kSymbol) {
      const std::string& op = Peek().text;
      if (op == "<" || op == "<=" || op == ">" || op == ">=" || op == "=" ||
          op == "<>" || op == "!=" || op == "==") {
        Advance();
        RMA_ASSIGN_OR_RETURN(SqlExprPtr rhs, ParseAddSub());
        return SqlExpr::Binary(op, std::move(lhs), std::move(rhs));
      }
    }
    return lhs;
  }

  Result<SqlExprPtr> ParseAddSub() {
    RMA_ASSIGN_OR_RETURN(SqlExprPtr lhs, ParseMulDiv());
    while (IsSymbol("+") || IsSymbol("-")) {
      const std::string op = Peek().text;
      Advance();
      RMA_ASSIGN_OR_RETURN(SqlExprPtr rhs, ParseMulDiv());
      lhs = SqlExpr::Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<SqlExprPtr> ParseMulDiv() {
    RMA_ASSIGN_OR_RETURN(SqlExprPtr lhs, ParseUnary());
    while (IsSymbol("*") || IsSymbol("/") || IsSymbol("%")) {
      const std::string op = Peek().text;
      Advance();
      RMA_ASSIGN_OR_RETURN(SqlExprPtr rhs, ParseUnary());
      lhs = SqlExpr::Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<SqlExprPtr> ParseUnary() {
    if (IsSymbol("-")) {
      Advance();
      RMA_ASSIGN_OR_RETURN(SqlExprPtr x, ParseUnary());
      return SqlExpr::Unary("-", std::move(x));
    }
    return ParsePrimary();
  }

  Result<SqlExprPtr> ParsePrimary() {
    const Token& t = Peek();
    if (t.kind == TokenKind::kInt) {
      Advance();
      return SqlExpr::Lit(Value(t.int_value));
    }
    if (t.kind == TokenKind::kFloat) {
      Advance();
      return SqlExpr::Lit(Value(t.float_value));
    }
    if (t.kind == TokenKind::kString) {
      Advance();
      return SqlExpr::Lit(Value(t.text));
    }
    if (IsSymbol("(")) {
      Advance();
      RMA_ASSIGN_OR_RETURN(SqlExprPtr e, ParseExpr());
      RMA_RETURN_NOT_OK(ExpectSymbol(")"));
      return e;
    }
    if (t.kind == TokenKind::kIdent) {
      if (IsReserved(t)) {
        return Status::ParseError("unexpected keyword '" + t.text + "'");
      }
      const std::string first = t.text;
      Advance();
      if (IsSymbol("(")) {  // function call / aggregate
        Advance();
        std::vector<SqlExprPtr> args;
        if (IsSymbol("*")) {  // COUNT(*)
          Advance();
          args.push_back(SqlExpr::Star());
        } else if (!IsSymbol(")")) {
          while (true) {
            RMA_ASSIGN_OR_RETURN(SqlExprPtr a, ParseExpr());
            args.push_back(std::move(a));
            if (!IsSymbol(",")) break;
            Advance();
          }
        }
        RMA_RETURN_NOT_OK(ExpectSymbol(")"));
        return SqlExpr::Call(ToUpper(first), std::move(args));
      }
      if (IsSymbol(".")) {  // qualified column
        Advance();
        RMA_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
        return SqlExpr::Column(first, std::move(col));
      }
      return SqlExpr::Column("", first);
    }
    return Status::ParseError("unexpected token '" + t.text + "'");
  }

  // --- token helpers ----------------------------------------------------------

  const Token& Peek() const { return tokens_[pos_]; }
  const Token& PeekAt(size_t delta) const {
    const size_t i = pos_ + delta;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  static bool IsReserved(const Token& t) {
    return t.kind == TokenKind::kIdent &&
           ReservedWords().count(ToUpper(t.text)) > 0;
  }
  bool IsKeyword(const char* kw) const {
    return Peek().kind == TokenKind::kIdent &&
           EqualsIgnoreCase(Peek().text, kw);
  }
  bool IsSymbol(const char* s) const {
    return Peek().kind == TokenKind::kSymbol && Peek().text == s;
  }
  Status ExpectKeyword(const char* kw) {
    if (!IsKeyword(kw)) {
      return Status::ParseError(std::string("expected ") + kw + ", got '" +
                                Peek().text + "'");
    }
    Advance();
    return Status::OK();
  }
  Status ExpectSymbol(const char* s) {
    if (!IsSymbol(s)) {
      return Status::ParseError(std::string("expected '") + s + "', got '" +
                                Peek().text + "'");
    }
    Advance();
    return Status::OK();
  }
  Result<std::string> ExpectIdent() {
    if (Peek().kind != TokenKind::kIdent || IsReserved(Peek())) {
      return Status::ParseError("expected identifier, got '" + Peek().text +
                                "'");
    }
    std::string s = Peek().text;
    Advance();
    return s;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Statement> Parse(const std::string& input) {
  RMA_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(input));
  Parser p(std::move(tokens));
  return p.ParseStatement();
}

Result<SelectStmtPtr> ParseSelect(const std::string& input) {
  RMA_ASSIGN_OR_RETURN(Statement stmt, Parse(input));
  if (stmt.kind != Statement::Kind::kSelect) {
    return Status::ParseError("expected a SELECT statement");
  }
  return stmt.select;
}

Result<std::vector<std::string>> SplitStatements(const std::string& script) {
  RMA_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(script));
  std::vector<std::string> out;
  size_t start = 0;
  bool has_content = false;
  for (const Token& tok : tokens) {
    if (tok.kind == TokenKind::kEnd) break;
    if (tok.kind == TokenKind::kSymbol && tok.text == ";") {
      if (has_content) {
        out.push_back(script.substr(start, tok.position - start));
      }
      start = tok.position + 1;
      has_content = false;
    } else {
      has_content = true;
    }
  }
  if (has_content) out.push_back(script.substr(start));
  return out;
}

}  // namespace rma::sql
