#ifndef RMA_SQL_DATABASE_H_
#define RMA_SQL_DATABASE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/options.h"
#include "core/query_cache.h"
#include "sql/ast.h"
#include "storage/paged_store.h"
#include "storage/relation.h"
#include "util/mutex.h"
#include "util/result.h"
#include "util/thread_annotations.h"

namespace rma::sql {

struct StatementEffects;

/// A named-relation catalog plus the SQL entry point.
///
/// Example (the paper's introduction):
///   Database db;
///   db.Register("rating", rating);
///   auto v = db.Query("SELECT * FROM INV(rating BY User)");
///
/// The database owns a QueryCache shared by every statement it executes:
/// physical plans are cached per normalized statement text and prepared
/// arguments (sort/alignment permutations) per relation identity, so a
/// repeated query skips planning and sorting entirely. Catalog mutations
/// (Register, Drop, CREATE TABLE AS) invalidate **per table**: a cached
/// plan records the base tables it reads (as identity-anchored snapshots),
/// and a mutation evicts only the plans touching the written table —
/// mutating A never costs plans that read only B. The monotone catalog
/// version stays as the backstop for plans whose read set could not be
/// attributed.
///
/// Thread-safety: the catalog is guarded by a shared mutex and the version
/// is atomic, so concurrent Query/Execute calls may interleave with
/// Register/Drop from other threads without corrupting state — every bound
/// relation is an immutable snapshot (shared immutable columns), and a
/// plan entry only hits while the catalog still maps each table the plan
/// reads to the exact relation it embedded (identity match; unattributed
/// entries hit only at the exact catalog version they were built at). The
/// isolation level is read-committed, not snapshot: a statement binds each
/// table reference with its own lookup, so a mutation landing mid-statement
/// can let one statement observe both the old and the new catalog (e.g. a
/// self-join bound around a concurrent Register); a plan recorded by such a
/// statement detects the mixed binds and is never served by identity.
/// `rma_options` must not be mutated while statements execute concurrently.
class Database {
 public:
  Database() = default;
  Database(const Database& other);
  Database& operator=(const Database& other);

  /// Opens (or creates) a durable database under `dir`: recovers the
  /// catalog from the store's manifest (discarding tables whose files fail
  /// their checks — see storage/paged_store.h for the recovery protocol)
  /// and attaches the store so every subsequent Register/Drop/CTAS is
  /// persisted atomically and table columns read through the buffer pool.
  /// Databases built with the default constructor stay purely in-memory:
  /// malloc-backed BATs remain the default representation, and results are
  /// bit-identical either way.
  static Result<Database> Open(const std::string& dir,
                               const PagedStoreOptions& opts = {});

  /// The attached durable store, or nullptr for an in-memory database.
  const std::shared_ptr<PagedStore>& paged_store() const { return store_; }

  /// Adds (or replaces) a table. The relation's name is set to `name`.
  /// Bumps the catalog version and evicts exactly the cached plans reading
  /// this table (plus a replaced relation's prepared arguments); plans over
  /// other tables survive. With a store attached the relation is persisted
  /// first (atomic manifest swing) and the catalog holds the store-backed
  /// twin; persistence failure leaves the catalog unchanged.
  Status Register(const std::string& name, Relation rel);

  /// Looks a table up (case-insensitive).
  Result<Relation> Get(const std::string& name) const;

  /// Removes a table, its cached prepared arguments, and every cached plan
  /// reading it. NotFound (with the table name) if absent.
  Status Drop(const std::string& name);

  bool Has(const std::string& name) const { return Get(name).ok(); }

  std::vector<std::string> TableNames() const;

  /// Runs a SELECT statement and returns the result relation.
  Result<Relation> Query(const std::string& sql) const;

  /// Runs any statement. CREATE TABLE ... AS stores and returns the result;
  /// DROP TABLE returns an empty relation; EXPLAIN [ANALYZE] returns the
  /// plan rendering.
  Result<Relation> Execute(const std::string& sql);

  /// Session-scoped execution: runs one statement on a caller-provided
  /// context instead of a fresh per-statement one. The context carries the
  /// caller's options (a server session's per-session RmaOptions /
  /// calibration profile) and should borrow this database's query cache
  /// (`ExecContext(opts, db.query_cache())`) so cached plans and prepared
  /// arguments are shared across sessions while stats accumulate per
  /// session. SELECT and CREATE TABLE AS consult the plan cache exactly as
  /// Execute does; EXPLAIN [ANALYZE] honours the context's options but
  /// renders on a scratch context (its execution section reports the one
  /// statement, not the session's cumulative totals). Statements on one
  /// context must be serial (the server runs each session's statements in
  /// order); different contexts may call this concurrently.
  Result<Relation> ExecuteOn(const std::string& sql, ExecContext* ctx);

  /// Executes `statements`, returning one Result per statement (aligned
  /// with the input; a failed statement does not stop the batch).
  ///
  /// Scheduling is dependency-aware (sql/effects.h): each statement's
  /// effects — base tables read; tables created/dropped/replaced — are
  /// extracted from its AST, and a statement only waits on earlier
  /// statements whose write set intersects its read or write sets. A CTAS
  /// fences only statements touching its table; disjoint DDL+SELECT chains
  /// overlap; read-only statements (SELECT and EXPLAIN, plain or ANALYZE
  /// of a select) never fence each other. Under the default readiness
  /// schedule (RmaOptions::batch_schedule) each statement launches on the
  /// shared worker pool the moment its own dependencies complete — a slow
  /// statement delays only its transitive dependents, never unrelated
  /// chains; BatchSchedule::kWaves restores the level-synchronized wave
  /// execution. Either way the batch shares one ExecContext borrowing the
  /// query cache, and the thread budget (rma_options.max_threads, 0 =
  /// hardware concurrency) is split across the in-flight statements so
  /// total worker fan-out stays bounded. Identical in-flight statements
  /// are deduplicated at the plan cache (QueryCache::AcquirePlan): one
  /// leader plans, the rest wait and borrow its plan instead of racing to
  /// fill the same entry.
  ///
  /// Every statement observes exactly the catalog state its script
  /// position implies: a SELECT over a table created earlier in the batch
  /// runs after that CTAS, and one over a table dropped earlier fails —
  /// the schedule only reorders statements whose results cannot depend on
  /// each other.
  std::vector<Result<Relation>> ExecuteBatch(
      const std::vector<std::string>& statements);

  /// Splits a multi-statement script on top-level semicolons
  /// (sql::SplitStatements) and runs it through ExecuteBatch. A script that
  /// fails to split returns a single error Result.
  std::vector<Result<Relation>> ExecuteScript(const std::string& script);

  /// The shared query cache (never null). Exposed for introspection
  /// (benchmarks, tests); statements use it automatically.
  const QueryCachePtr& query_cache() const { return query_cache_; }

  /// Monotone version of the catalog contents; bumped by Register/Drop
  /// (and thus CREATE TABLE AS). Plan-cache entries with an attributed
  /// read set hit via identity snapshots regardless of the version;
  /// unattributed entries only hit at the exact version they were built
  /// at (the correctness backstop).
  uint64_t catalog_version() const {
    return catalog_version_.load(std::memory_order_acquire);
  }

  /// Options applied to relational matrix operations inside queries.
  RmaOptions rma_options;

 private:
  /// Bumps the catalog version and evicts the cached plans reading
  /// `written_table` (lower-cased). Caller holds catalog_mu_ exclusively.
  void BumpCatalogVersionLocked(const std::string& written_table)
      RMA_REQUIRES(catalog_mu_);
  Result<Relation> ExecuteParsed(Statement&& stmt, const std::string& sql);
  void ExecuteBatchStatement(Statement&& stmt, const std::string& sql,
                             ExecContext* ctx, Result<Relation>* slot);

  /// Per-statement readiness scheduling for ExecuteBatch: completion
  /// counters on the conflict edges, admission capped at `budget` in-flight
  /// statements. Parsed-ok entries of `parsed` are consumed (moved into
  /// execution); `results` slots are filled in place.
  void ExecuteBatchReadiness(std::vector<Result<Statement>>* parsed,
                             const std::vector<std::string>& statements,
                             const std::vector<StatementEffects>& effects,
                             int budget,
                             std::vector<Result<Relation>>* results);

  /// Guards tables_; the catalog version is additionally atomic so
  /// statement execution can read it without the lock.
  mutable SharedMutex catalog_mu_;
  /// Keyed by lower-cased name.
  std::map<std::string, Relation> tables_ RMA_GUARDED_BY(catalog_mu_);
  /// Not lock-guarded: set at construction and reassigned only by the copy
  /// operations, which require external quiescence (no concurrent
  /// statements — the same contract rma_options carries). Statement
  /// execution reads the pointer freely; the QueryCache it points at is
  /// internally synchronized.
  QueryCachePtr query_cache_ = std::make_shared<QueryCache>();
  std::atomic<uint64_t> catalog_version_{0};
  /// Durable backing store; nullptr for in-memory databases. Shares the
  /// copy discipline of query_cache_ (reassigned only under quiescence;
  /// the PagedStore is internally synchronized).
  std::shared_ptr<PagedStore> store_;
};

}  // namespace rma::sql

#endif  // RMA_SQL_DATABASE_H_
