#ifndef RMA_SQL_DATABASE_H_
#define RMA_SQL_DATABASE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/options.h"
#include "core/query_cache.h"
#include "storage/relation.h"
#include "util/result.h"

namespace rma::sql {

/// A named-relation catalog plus the SQL entry point.
///
/// Example (the paper's introduction):
///   Database db;
///   db.Register("rating", rating);
///   auto v = db.Query("SELECT * FROM INV(rating BY User)");
///
/// The database owns a QueryCache shared by every statement it executes:
/// physical plans are cached per normalized statement text and prepared
/// arguments (sort/alignment permutations) per relation identity, so a
/// repeated query skips planning and sorting entirely. Catalog mutations
/// (Register, Drop, CREATE TABLE AS) bump a monotone catalog version that
/// invalidates stale plans and evicts the touched relation's prepared
/// arguments.
class Database {
 public:
  /// Adds (or replaces) a table. The relation's name is set to `name`.
  /// Bumps the catalog version; a replaced relation's cached state is
  /// evicted.
  Status Register(const std::string& name, Relation rel);

  /// Looks a table up (case-insensitive).
  Result<Relation> Get(const std::string& name) const;

  /// Removes a table, its cached prepared arguments, and every plan built
  /// against the old catalog. NotFound (with the table name) if absent.
  Status Drop(const std::string& name);

  bool Has(const std::string& name) const { return Get(name).ok(); }

  std::vector<std::string> TableNames() const;

  /// Runs a SELECT statement and returns the result relation.
  Result<Relation> Query(const std::string& sql) const;

  /// Runs any statement. CREATE TABLE ... AS stores and returns the result;
  /// DROP TABLE returns an empty relation; EXPLAIN [ANALYZE] returns the
  /// plan rendering.
  Result<Relation> Execute(const std::string& sql);

  /// The shared query cache (never null). Exposed for introspection
  /// (benchmarks, tests); statements use it automatically.
  const QueryCachePtr& query_cache() const { return query_cache_; }

  /// Monotone version of the catalog contents; bumped by Register/Drop
  /// (and thus CREATE TABLE AS). Plan-cache entries only hit at the exact
  /// version they were built at.
  uint64_t catalog_version() const { return catalog_version_; }

  /// Options applied to relational matrix operations inside queries.
  RmaOptions rma_options;

 private:
  void BumpCatalogVersion();

  std::map<std::string, Relation> tables_;  // keyed by lower-cased name
  QueryCachePtr query_cache_ = std::make_shared<QueryCache>();
  uint64_t catalog_version_ = 0;
};

}  // namespace rma::sql

#endif  // RMA_SQL_DATABASE_H_
