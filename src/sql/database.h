#ifndef RMA_SQL_DATABASE_H_
#define RMA_SQL_DATABASE_H_

#include <map>
#include <string>
#include <vector>

#include "core/options.h"
#include "storage/relation.h"
#include "util/result.h"

namespace rma::sql {

/// A named-relation catalog plus the SQL entry point.
///
/// Example (the paper's introduction):
///   Database db;
///   db.Register("rating", rating);
///   auto v = db.Query("SELECT * FROM INV(rating BY User)");
class Database {
 public:
  /// Adds (or replaces) a table. The relation's name is set to `name`.
  Status Register(const std::string& name, Relation rel);

  /// Looks a table up (case-insensitive).
  Result<Relation> Get(const std::string& name) const;

  Status Drop(const std::string& name);

  bool Has(const std::string& name) const { return Get(name).ok(); }

  std::vector<std::string> TableNames() const;

  /// Runs a SELECT statement and returns the result relation.
  Result<Relation> Query(const std::string& sql) const;

  /// Runs any statement. CREATE TABLE ... AS stores and returns the result;
  /// DROP TABLE returns an empty relation.
  Result<Relation> Execute(const std::string& sql);

  /// Options applied to relational matrix operations inside queries.
  RmaOptions rma_options;

 private:
  std::map<std::string, Relation> tables_;  // keyed by lower-cased name
};

}  // namespace rma::sql

#endif  // RMA_SQL_DATABASE_H_
