#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>

namespace rma::sql {

Result<std::vector<Token>> Lex(const std::string& input) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {  // line comment
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && input[i + 1] == '*') {  // block comment
      const size_t start = i;
      i += 2;  // never match the '*' of '/*' as a closer ("/*/" stays open)
      while (i + 1 < n && !(input[i] == '*' && input[i + 1] == '/')) ++i;
      if (i + 1 >= n) {
        return Status::ParseError("unterminated block comment at offset " +
                                  std::to_string(start));
      }
      i += 2;
      continue;
    }
    Token t;
    t.position = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(input[j])) ||
                       input[j] == '_')) {
        ++j;
      }
      t.kind = TokenKind::kIdent;
      t.text = input.substr(i, j - i);
      i = j;
      out.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t j = i;
      bool is_float = false;
      while (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) ++j;
      if (j < n && input[j] == '.') {
        is_float = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) ++j;
      }
      if (j < n && (input[j] == 'e' || input[j] == 'E')) {
        is_float = true;
        ++j;
        if (j < n && (input[j] == '+' || input[j] == '-')) ++j;
        if (j >= n || !std::isdigit(static_cast<unsigned char>(input[j]))) {
          return Status::ParseError("malformed number at offset " +
                                    std::to_string(i));
        }
        while (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) ++j;
      }
      t.text = input.substr(i, j - i);
      if (is_float) {
        t.kind = TokenKind::kFloat;
        t.float_value = std::strtod(t.text.c_str(), nullptr);
      } else {
        t.kind = TokenKind::kInt;
        t.int_value = std::strtoll(t.text.c_str(), nullptr, 10);
      }
      i = j;
      out.push_back(std::move(t));
      continue;
    }
    if (c == '\'') {
      std::string s;
      size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        if (input[j] == '\'') {
          if (j + 1 < n && input[j + 1] == '\'') {  // escaped quote
            s += '\'';
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        s += input[j];
        ++j;
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(i));
      }
      t.kind = TokenKind::kString;
      t.text = std::move(s);
      i = j;
      out.push_back(std::move(t));
      continue;
    }
    // Two-character symbols first.
    if (i + 1 < n) {
      const std::string two = input.substr(i, 2);
      if (two == "<=" || two == ">=" || two == "<>" || two == "!=" ||
          two == "==") {
        t.kind = TokenKind::kSymbol;
        t.text = two;
        i += 2;
        out.push_back(std::move(t));
        continue;
      }
    }
    const std::string one(1, c);
    if (one == "(" || one == ")" || one == "," || one == "." || one == "*" ||
        one == "+" || one == "-" || one == "/" || one == "%" || one == "<" ||
        one == ">" || one == "=" || one == ";") {
      t.kind = TokenKind::kSymbol;
      t.text = one;
      ++i;
      out.push_back(std::move(t));
      continue;
    }
    return Status::ParseError("unexpected character '" + one +
                              "' at offset " + std::to_string(i));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.position = n;
  out.push_back(std::move(end));
  return out;
}

}  // namespace rma::sql
