#include "sql/database.h"

#include <atomic>

#include "core/exec_context.h"
#include "sql/executor.h"
#include "sql/parser.h"
#include "util/string_util.h"

namespace rma::sql {

void Database::BumpCatalogVersion() {
  // Versions come from a process-wide counter, not a per-database one:
  // copied Database objects share the QueryCache, and independent bumps of
  // per-database counters could coincide and let one copy serve the other's
  // cached plans (whose leaves embed the wrong catalog's relations). A
  // global counter makes every post-copy mutation land on a version no
  // other database ever reaches.
  static std::atomic<uint64_t> global_version{0};
  catalog_version_ = global_version.fetch_add(1, std::memory_order_relaxed) + 1;
  query_cache_->InvalidateStalePlans(catalog_version_);
}

Status Database::Register(const std::string& name, Relation rel) {
  rel.set_name(name);
  const std::string key = ToLower(name);
  auto it = tables_.find(key);
  if (it != tables_.end()) {
    query_cache_->EvictRelation(it->second.identity());
  }
  tables_[key] = std::move(rel);
  BumpCatalogVersion();
  return Status::OK();
}

Result<Relation> Database::Get(const std::string& name) const {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::KeyError("unknown table: " + name);
  }
  return it->second;
}

Status Database::Drop(const std::string& name) {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("table not found: " + name);
  }
  query_cache_->EvictRelation(it->second.identity());
  tables_.erase(it);
  BumpCatalogVersion();
  return Status::OK();
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, rel] : tables_) out.push_back(rel.name());
  return out;
}

Result<Relation> Database::Query(const std::string& sql) const {
  RMA_ASSIGN_OR_RETURN(SelectStmtPtr stmt, ParseSelect(sql));
  ExecContext ctx(rma_options, query_cache_);
  return ExecuteSelectCached(*this, *stmt,
                             QueryCache::NormalizeStatement(sql), &ctx);
}

Result<Relation> Database::Execute(const std::string& sql) {
  RMA_ASSIGN_OR_RETURN(Statement stmt, Parse(sql));
  switch (stmt.kind) {
    case Statement::Kind::kSelect: {
      ExecContext ctx(rma_options, query_cache_);
      return ExecuteSelectCached(*this, *stmt.select,
                                 QueryCache::NormalizeStatement(sql), &ctx);
    }
    case Statement::Kind::kCreateTableAs: {
      // No plan-cache consult: the Register below bumps the catalog version,
      // which would invalidate a just-stored plan before it could ever hit.
      // The context still borrows the shared cache, so prepared arguments
      // (sort/alignment permutations) are reused and kept warm.
      ExecContext ctx(rma_options, query_cache_);
      RMA_ASSIGN_OR_RETURN(Relation rel,
                           ExecuteSelect(*this, *stmt.select, &ctx));
      RMA_RETURN_NOT_OK(Register(stmt.table_name, rel));
      return rel;
    }
    case Statement::Kind::kDropTable: {
      RMA_RETURN_NOT_OK(Drop(stmt.table_name));
      return Relation();
    }
    case Statement::Kind::kExplain:
      return ExplainStatement(*this, stmt, sql);
  }
  return Status::Invalid("unreachable statement kind");
}

}  // namespace rma::sql
