#include "sql/database.h"

#include "sql/executor.h"
#include "sql/parser.h"
#include "util/string_util.h"

namespace rma::sql {

Status Database::Register(const std::string& name, Relation rel) {
  rel.set_name(name);
  tables_[ToLower(name)] = std::move(rel);
  return Status::OK();
}

Result<Relation> Database::Get(const std::string& name) const {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::KeyError("unknown table: " + name);
  }
  return it->second;
}

Status Database::Drop(const std::string& name) {
  if (tables_.erase(ToLower(name)) == 0) {
    return Status::KeyError("unknown table: " + name);
  }
  return Status::OK();
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, rel] : tables_) out.push_back(rel.name());
  return out;
}

Result<Relation> Database::Query(const std::string& sql) const {
  RMA_ASSIGN_OR_RETURN(SelectStmtPtr stmt, ParseSelect(sql));
  return ExecuteSelect(*this, *stmt, rma_options);
}

Result<Relation> Database::Execute(const std::string& sql) {
  RMA_ASSIGN_OR_RETURN(Statement stmt, Parse(sql));
  switch (stmt.kind) {
    case Statement::Kind::kSelect:
      return ExecuteSelect(*this, *stmt.select, rma_options);
    case Statement::Kind::kCreateTableAs: {
      RMA_ASSIGN_OR_RETURN(Relation rel,
                           ExecuteSelect(*this, *stmt.select, rma_options));
      RMA_RETURN_NOT_OK(Register(stmt.table_name, rel));
      return rel;
    }
    case Statement::Kind::kDropTable: {
      RMA_RETURN_NOT_OK(Drop(stmt.table_name));
      return Relation();
    }
    case Statement::Kind::kExplain:
      return ExplainSelect(*this, *stmt.select, rma_options);
  }
  return Status::Invalid("unreachable statement kind");
}

}  // namespace rma::sql
