#include "sql/database.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <functional>
#include <utility>

#include "core/exec_context.h"
#include "matrix/parallel.h"
#include "sql/effects.h"
#include "sql/executor.h"
#include "sql/parser.h"
#include "util/mutex.h"
#include "util/string_util.h"
#include "util/thread_annotations.h"

namespace rma::sql {

// Suppress the member's default initializer (a fresh QueryCache that the
// assignment below would immediately discard); the shared cache is copied
// under the source's lock.
Database::Database(const Database& other) : query_cache_(nullptr) {
  ReaderMutexLock lock(other.catalog_mu_);
  tables_ = other.tables_;
  query_cache_ = other.query_cache_;
  catalog_version_.store(other.catalog_version(), std::memory_order_release);
  rma_options = other.rma_options;
  store_ = other.store_;
}

Database& Database::operator=(const Database& other) {
  if (this == &other) return *this;
  std::map<std::string, Relation> tables;
  QueryCachePtr cache;
  uint64_t version;
  RmaOptions opts;
  std::shared_ptr<PagedStore> store;
  {
    ReaderMutexLock lock(other.catalog_mu_);
    tables = other.tables_;
    cache = other.query_cache_;
    version = other.catalog_version();
    opts = other.rma_options;
    store = other.store_;
  }
  WriterMutexLock lock(catalog_mu_);
  tables_ = std::move(tables);
  query_cache_ = std::move(cache);
  catalog_version_.store(version, std::memory_order_release);
  rma_options = opts;
  store_ = std::move(store);
  return *this;
}

Result<Database> Database::Open(const std::string& dir,
                                const PagedStoreOptions& opts) {
  RMA_ASSIGN_OR_RETURN(std::shared_ptr<PagedStore> store,
                       PagedStore::Open(dir, opts));
  Database db;
  db.store_ = store;
  {
    // Scoped: returning `db` copies it, and the copy constructor takes
    // this same lock.
    WriterMutexLock lock(db.catalog_mu_);
    // Recovered relations enter the catalog directly — they are already
    // persisted, so routing them through Register would rewrite every file.
    for (const auto& [name, rel] : store->recovered()) {
      db.tables_[ToLower(name)] = rel;
      db.BumpCatalogVersionLocked(ToLower(name));
    }
  }
  return db;
}

void Database::BumpCatalogVersionLocked(const std::string& written_table) {
  // Versions come from a process-wide counter, not a per-database one:
  // copied Database objects share the QueryCache, and independent bumps of
  // per-database counters could coincide and let one copy serve the other's
  // cached plans (whose leaves embed the wrong catalog's relations). A
  // global counter makes every post-copy mutation land on a version no
  // other database ever reaches. (The identity snapshots on attributed
  // plans are the primary hit rule; the version is the backstop for plans
  // without one.)
  static std::atomic<uint64_t> global_version{0};
  catalog_version_.store(
      global_version.fetch_add(1, std::memory_order_relaxed) + 1,
      std::memory_order_release);
  // Per-table invalidation: only plans reading the written table are
  // evicted — plans over other tables keep hitting via their identity
  // snapshots across this version bump.
  query_cache_->InvalidatePlansForTables({written_table}, catalog_version());
}

Status Database::Register(const std::string& name, Relation rel) {
  rel.set_name(name);
  const std::string key = ToLower(name);
  WriterMutexLock lock(catalog_mu_);
  if (store_ != nullptr) {
    // Persist before committing to the catalog: a failed write (full disk,
    // I/O error) must leave both the durable and the in-memory state
    // describing the previous table. The catalog holds the store-backed
    // twin so reads fault through the buffer pool.
    auto stored = store_->SaveTable(name, rel);
    if (!stored.ok()) return stored.status();
    rel = std::move(*stored);
  }
  auto it = tables_.find(key);
  if (it != tables_.end()) {
    query_cache_->EvictRelation(it->second.identity());
  }
  tables_[key] = std::move(rel);
  BumpCatalogVersionLocked(key);
  return Status::OK();
}

Result<Relation> Database::Get(const std::string& name) const {
  ReaderMutexLock lock(catalog_mu_);
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::KeyError("unknown table: " + name);
  }
  return it->second;
}

Status Database::Drop(const std::string& name) {
  WriterMutexLock lock(catalog_mu_);
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("table not found: " + name);
  }
  if (store_ != nullptr) {
    // Durable first: if the manifest rewrite fails the catalog still maps
    // the table, matching what the next Open would recover.
    RMA_RETURN_NOT_OK(store_->DropTable(name));
  }
  query_cache_->EvictRelation(it->second.identity());
  const std::string key = ToLower(name);
  tables_.erase(it);
  BumpCatalogVersionLocked(key);
  return Status::OK();
}

std::vector<std::string> Database::TableNames() const {
  ReaderMutexLock lock(catalog_mu_);
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, rel] : tables_) out.push_back(rel.name());
  return out;
}

Result<Relation> Database::Query(const std::string& sql) const {
  RMA_ASSIGN_OR_RETURN(SelectStmtPtr stmt, ParseSelect(sql));
  ExecContext ctx(rma_options, query_cache_);
  return ExecuteSelectCached(*this, *stmt,
                             QueryCache::NormalizeStatement(sql), &ctx);
}

Result<Relation> Database::Execute(const std::string& sql) {
  RMA_ASSIGN_OR_RETURN(Statement stmt, Parse(sql));
  return ExecuteParsed(std::move(stmt), sql);
}

Result<Relation> Database::ExecuteOn(const std::string& sql,
                                     ExecContext* ctx) {
  RMA_ASSIGN_OR_RETURN(Statement stmt, Parse(sql));
  switch (stmt.kind) {
    case Statement::Kind::kSelect:
      return ExecuteSelectCached(*this, *stmt.select,
                                 QueryCache::NormalizeStatement(sql), ctx);
    case Statement::Kind::kCreateTableAs: {
      RMA_ASSIGN_OR_RETURN(
          Relation rel,
          ExecuteSelectCached(*this, *stmt.select,
                              QueryCache::NormalizeStatement(sql), ctx));
      RMA_RETURN_NOT_OK(Register(stmt.table_name, rel));
      return rel;
    }
    case Statement::Kind::kDropTable: {
      RMA_RETURN_NOT_OK(Drop(stmt.table_name));
      return Relation();
    }
    case Statement::Kind::kExplain:
      return ExplainStatement(*this, stmt, sql, &ctx->options());
  }
  return Status::Invalid("unreachable statement kind");
}

Result<Relation> Database::ExecuteParsed(Statement&& stmt,
                                         const std::string& sql) {
  switch (stmt.kind) {
    case Statement::Kind::kSelect: {
      ExecContext ctx(rma_options, query_cache_);
      return ExecuteSelectCached(*this, *stmt.select,
                                 QueryCache::NormalizeStatement(sql), &ctx);
    }
    case Statement::Kind::kCreateTableAs: {
      // The select consults the plan cache under the full statement text:
      // invalidation is per-table, so the Register below evicts only plans
      // reading the replaced table — a CTAS whose select reads *other*
      // tables no longer invalidates itself (or anything else).
      ExecContext ctx(rma_options, query_cache_);
      RMA_ASSIGN_OR_RETURN(
          Relation rel,
          ExecuteSelectCached(*this, *stmt.select,
                              QueryCache::NormalizeStatement(sql), &ctx));
      RMA_RETURN_NOT_OK(Register(stmt.table_name, rel));
      return rel;
    }
    case Statement::Kind::kDropTable: {
      RMA_RETURN_NOT_OK(Drop(stmt.table_name));
      return Relation();
    }
    case Statement::Kind::kExplain:
      return ExplainStatement(*this, stmt, sql);
  }
  return Status::Invalid("unreachable statement kind");
}

/// Executes one already-parsed batch statement into `results[index]`.
/// SELECTs go through the plan cache over the wave's shared context; any
/// other kind routes through ExecuteParsed (which creates its own context
/// and performs its catalog mutation under the catalog lock).
void Database::ExecuteBatchStatement(Statement&& stmt, const std::string& sql,
                                     ExecContext* ctx,
                                     Result<Relation>* slot) {
  if (stmt.kind == Statement::Kind::kSelect) {
    *slot = ExecuteSelectCached(*this, *stmt.select,
                                QueryCache::NormalizeStatement(sql), ctx);
  } else {
    *slot = ExecuteParsed(std::move(stmt), sql);
  }
}

namespace {

/// Shared scheduler state of one readiness batch (ExecuteBatchReadiness).
/// The completion handlers of concurrently retiring statements race on this,
/// so everything they touch sits behind `mu` with analysis-visible
/// annotations; AdmitLocked is the RMA_REQUIRES helper both admission sites
/// (initial launch, completion handler) share.
struct ReadinessState {
  explicit ReadinessState(size_t n) : shares(n, 1), dep_count(n, 0) {}

  Mutex mu;
  CondVar cv;
  /// Dep-free, not yet launched, in index order.
  std::deque<size_t> ready RMA_GUARDED_BY(mu);
  std::deque<ThreadPool::TaskPtr> joinable RMA_GUARDED_BY(mu);
  /// Per-statement thread budget, fixed at admission.
  std::vector<int> shares RMA_GUARDED_BY(mu);
  /// Completion counters on the conflict edges: statement j waits on every
  /// earlier conflicting i, and launches the moment its counter hits zero —
  /// no wave barrier.
  std::vector<int> dep_count RMA_GUARDED_BY(mu);
  int in_flight RMA_GUARDED_BY(mu) = 0;
  /// submit() calls whose TaskPtr isn't in `joinable` yet.
  int pending_submits RMA_GUARDED_BY(mu) = 0;
  size_t completed RMA_GUARDED_BY(mu) = 0;

  /// Pops ready statements up to the in-flight cap (the pool is sized to
  /// the hardware, not the user's cap). The caller submits the admitted
  /// statements after releasing mu — Submit wakes pool workers that would
  /// immediately contend on it.
  void AdmitLocked(int budget, std::vector<size_t>* out) RMA_REQUIRES(mu) {
    while (in_flight < budget && !ready.empty()) {
      out->push_back(ready.front());
      ready.pop_front();
      ++in_flight;
    }
    // Split the statement-level thread budget across the admission-time
    // target concurrency: everything in flight once this round is admitted.
    // Shares handed out in earlier rounds are not revisited, so aggregate
    // fan-out can transiently exceed `budget` until those statements retire;
    // each round on its own sums to at most `budget`, like a wave.
    for (size_t j : *out) {
      shares[j] = std::max(1, budget / std::max(1, in_flight));
    }
  }
};

}  // namespace

void Database::ExecuteBatchReadiness(
    std::vector<Result<Statement>>* parsed,
    const std::vector<std::string>& statements,
    const std::vector<StatementEffects>& effects, int budget,
    std::vector<Result<Relation>>* results) {
  const size_t n = statements.size();
  // `dependents` is built before any task launches and read-only afterwards;
  // the mutable completion counters live in ReadinessState under its mutex.
  // Unparseable statements have empty effects (no edges) and never launch;
  // their result slots already hold the parse error.
  ReadinessState state(n);
  std::vector<std::vector<size_t>> dependents(n);
  size_t runnable = 0;
  {
    MutexLock lock(state.mu);
    for (size_t j = 0; j < n; ++j) {
      if (!(*parsed)[j].ok()) continue;
      ++runnable;
      for (size_t i = 0; i < j; ++i) {
        if (!(*parsed)[i].ok()) continue;
        if (EffectsConflict(effects[i], effects[j])) {
          ++state.dep_count[j];
          dependents[i].push_back(j);
        }
      }
    }
    for (size_t j = 0; j < n; ++j) {
      if ((*parsed)[j].ok() && state.dep_count[j] == 0) {
        state.ready.push_back(j);
      }
    }
  }
  if (runnable == 0) return;

  // One context for the whole batch: concurrent SELECTs share it (it is
  // internally synchronized and borrows the shared QueryCache), keeping the
  // plan/prepared caches warm across every statement. Prepared entries are
  // keyed by column identity, so tables replaced mid-batch cannot serve
  // stale hits.
  ExecContext ctx(rma_options, query_cache_);

  /// Per-slot: only statement k's task writes errors[k], strictly before its
  /// completion handler's release of state.mu; the join below reads it only
  /// after observing completed == runnable under the same mutex.
  std::vector<std::exception_ptr> errors(n);

  // Submitting is a two-step handoff: the task goes to the pool first, and
  // only then into `joinable`. In between, the task can already run to
  // completion on a worker, so `pending_submits` is raised under mu before
  // Submit and lowered with the push — the join predicate refuses to unwind
  // while it is nonzero, which is what keeps the state alive for the push
  // below even when the task beats it.
  std::function<void(size_t)> submit = [&](size_t k) {
    Statement* stmt = &*(*parsed)[k];
    const std::string* sql = &statements[k];
    Result<Relation>* slot = &(*results)[k];
    int share = 1;
    {
      MutexLock lock(state.mu);
      ++state.pending_submits;
      // The share was fixed by AdmitLocked before this submit ran; capture
      // it by value so the task body never reads guarded state unlocked.
      share = state.shares[k];
    }
    ThreadPool::TaskPtr task =
        ThreadPool::Shared().Submit([&, k, stmt, sql, slot, share] {
          {
            // The statement's kernels and subtree forks inherit the
            // admission-time share via the ambient ScopedThreadBudget.
            ScopedThreadBudget budget_share(share);
            try {
              ExecuteBatchStatement(std::move(*stmt), *sql, &ctx, slot);
            } catch (...) {
              errors[k] = std::current_exception();
            }
          }
          std::vector<size_t> admitted;
          {
            MutexLock lock(state.mu);
            --state.in_flight;
            ++state.completed;
            for (size_t j : dependents[k]) {
              if (--state.dep_count[j] == 0) state.ready.push_back(j);
            }
            state.AdmitLocked(budget, &admitted);
            state.cv.NotifyAll();
          }
          // When `admitted` is empty this task touches nothing shared past
          // the notify above, so the joining thread may safely unwind. When
          // it is non-empty the captured state stays alive: the admitted
          // statements count toward `runnable` but not `completed`, so the
          // join predicate cannot pass until the submits below have run and
          // those statements have retired.
          for (size_t j : admitted) submit(j);
        });
    MutexLock lock(state.mu);
    state.joinable.push_back(std::move(task));
    --state.pending_submits;
    state.cv.NotifyAll();
  };

  std::vector<size_t> admitted;
  {
    MutexLock lock(state.mu);
    state.AdmitLocked(budget, &admitted);
  }
  for (size_t j : admitted) submit(j);

  // Cooperative join: Wait() executes queued tasks on this thread while its
  // target is pending, so the batch progresses even when every pool worker
  // is busy. Task bodies capture their own exceptions into `errors` — Wait
  // itself never throws here. The join predicate is an explicit loop so the
  // guarded reads stay where the analysis sees state.mu held.
  while (true) {
    ThreadPool::TaskPtr task;
    {
      MutexLock lock(state.mu);
      while (state.joinable.empty() &&
             !(state.completed == runnable && state.pending_submits == 0)) {
        state.cv.Wait(state.mu);
      }
      if (!state.joinable.empty()) {
        task = std::move(state.joinable.front());
        state.joinable.pop_front();
      } else {
        break;
      }
    }
    ThreadPool::Shared().Wait(task);
  }
  // Every statement completed; surface the first failure in script order
  // (matches the waves path, which rethrows the first task error).
  for (size_t i = 0; i < n; ++i) {
    if (errors[i] != nullptr) std::rethrow_exception(errors[i]);
  }
}

std::vector<Result<Relation>> Database::ExecuteBatch(
    const std::vector<std::string>& statements) {
  const size_t n = statements.size();
  std::vector<Result<Relation>> results(
      n, Result<Relation>(Status::Invalid("statement not executed")));
  // Parse everything up front: the dependency analysis needs every
  // statement's effects before execution starts.
  std::vector<Result<Statement>> parsed;
  parsed.reserve(n);
  for (const std::string& sql : statements) parsed.push_back(Parse(sql));

  // Per-statement effect analysis → dependency DAG. A statement only waits
  // on earlier statements whose write set intersects its read/write sets
  // (RAW/WAW/WAR over table names), so a CTAS fences only statements
  // touching its table, disjoint DDL+SELECT chains overlap, and read-only
  // statements (SELECT, EXPLAIN) never fence each other. Conflicting
  // statements execute in index order, so every statement still observes
  // exactly the catalog state its position in the script implies.
  std::vector<StatementEffects> effects(n);
  for (size_t i = 0; i < n; ++i) {
    if (parsed[i].ok()) {
      effects[i] = AnalyzeEffects(*parsed[i]);
    } else {
      results[i] = parsed[i].status();
      // Unparseable: no effects — it conflicts with nothing and never runs.
    }
  }

  const int budget = rma_options.max_threads > 0 ? rma_options.max_threads
                                                 : DefaultThreadCount();
  if (rma_options.batch_schedule == BatchSchedule::kReadiness &&
      budget >= 2 && n > 1) {
    ExecuteBatchReadiness(&parsed, statements, effects, budget, &results);
    return results;
  }
  const std::vector<int> waves = ScheduleWaves(effects);
  int last_wave = -1;
  for (size_t i = 0; i < n; ++i) {
    if (parsed[i].ok()) last_wave = std::max(last_wave, waves[i]);
  }

  std::vector<size_t> wave_members;
  for (int wave = 0; wave <= last_wave; ++wave) {
    wave_members.clear();
    for (size_t i = 0; i < n; ++i) {
      if (parsed[i].ok() && waves[i] == wave) wave_members.push_back(i);
    }
    // One context per wave: concurrent SELECTs share it (it is internally
    // synchronized and borrows the shared QueryCache), keeping the
    // plan/prepared caches warm across the whole batch.
    ExecContext ctx(rma_options, query_cache_);
    if (wave_members.size() == 1 || budget < 2) {
      for (size_t k : wave_members) {
        ExecuteBatchStatement(std::move(*parsed[k]), statements[k], &ctx,
                              &results[k]);
      }
      continue;
    }
    // Dispatch the wave in flights of at most `budget` statements so no
    // more than `budget` are ever in flight (the pool is sized to the
    // hardware, not the user's cap), and split the statement-level thread
    // budget across each flight; each statement's kernels (and its own
    // subtree forks) inherit the share via the ambient ScopedThreadBudget.
    for (size_t base = 0; base < wave_members.size();
         base += static_cast<size_t>(budget)) {
      const size_t flight_end = std::min(
          wave_members.size(), base + static_cast<size_t>(budget));
      const int share =
          std::max(1, budget / static_cast<int>(flight_end - base));
      std::vector<ThreadPool::TaskPtr> tasks;
      tasks.reserve(flight_end - base);
      for (size_t m = base; m < flight_end; ++m) {
        const size_t k = wave_members[m];
        Statement* stmt = &*parsed[k];
        const std::string* sql = &statements[k];
        Result<Relation>* slot = &results[k];
        tasks.push_back(ThreadPool::Shared().Submit(
            [this, &ctx, stmt, sql, slot, share] {
              ScopedThreadBudget budget_share(share);
              ExecuteBatchStatement(std::move(*stmt), *sql, &ctx, slot);
            }));
      }
      // Join every task before letting any exception escape: a rethrow
      // with tasks still in flight would unwind ctx/results/parsed while
      // running tasks reference them.
      std::exception_ptr first_error;
      for (const auto& task : tasks) {
        try {
          ThreadPool::Shared().Wait(task);
        } catch (...) {
          if (first_error == nullptr) {
            first_error = std::current_exception();
          }
        }
      }
      if (first_error != nullptr) std::rethrow_exception(first_error);
    }
  }
  return results;
}

std::vector<Result<Relation>> Database::ExecuteScript(
    const std::string& script) {
  Result<std::vector<std::string>> statements = SplitStatements(script);
  if (!statements.ok()) {
    return {Result<Relation>(statements.status())};
  }
  return ExecuteBatch(*statements);
}

}  // namespace rma::sql
