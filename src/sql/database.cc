#include "sql/database.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <utility>

#include "core/exec_context.h"
#include "matrix/parallel.h"
#include "sql/executor.h"
#include "sql/parser.h"
#include "util/string_util.h"

namespace rma::sql {

// Suppress the member's default initializer (a fresh QueryCache that the
// assignment below would immediately discard); the shared cache is copied
// under the source's lock.
Database::Database(const Database& other) : query_cache_(nullptr) {
  std::shared_lock<std::shared_mutex> lock(other.catalog_mu_);
  tables_ = other.tables_;
  query_cache_ = other.query_cache_;
  catalog_version_.store(other.catalog_version(), std::memory_order_release);
  rma_options = other.rma_options;
}

Database& Database::operator=(const Database& other) {
  if (this == &other) return *this;
  std::map<std::string, Relation> tables;
  QueryCachePtr cache;
  uint64_t version;
  RmaOptions opts;
  {
    std::shared_lock<std::shared_mutex> lock(other.catalog_mu_);
    tables = other.tables_;
    cache = other.query_cache_;
    version = other.catalog_version();
    opts = other.rma_options;
  }
  std::unique_lock<std::shared_mutex> lock(catalog_mu_);
  tables_ = std::move(tables);
  query_cache_ = std::move(cache);
  catalog_version_.store(version, std::memory_order_release);
  rma_options = opts;
  return *this;
}

void Database::BumpCatalogVersionLocked() {
  // Versions come from a process-wide counter, not a per-database one:
  // copied Database objects share the QueryCache, and independent bumps of
  // per-database counters could coincide and let one copy serve the other's
  // cached plans (whose leaves embed the wrong catalog's relations). A
  // global counter makes every post-copy mutation land on a version no
  // other database ever reaches.
  static std::atomic<uint64_t> global_version{0};
  catalog_version_.store(
      global_version.fetch_add(1, std::memory_order_relaxed) + 1,
      std::memory_order_release);
  query_cache_->InvalidateStalePlans(catalog_version());
}

Status Database::Register(const std::string& name, Relation rel) {
  rel.set_name(name);
  const std::string key = ToLower(name);
  std::unique_lock<std::shared_mutex> lock(catalog_mu_);
  auto it = tables_.find(key);
  if (it != tables_.end()) {
    query_cache_->EvictRelation(it->second.identity());
  }
  tables_[key] = std::move(rel);
  BumpCatalogVersionLocked();
  return Status::OK();
}

Result<Relation> Database::Get(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(catalog_mu_);
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::KeyError("unknown table: " + name);
  }
  return it->second;
}

Status Database::Drop(const std::string& name) {
  std::unique_lock<std::shared_mutex> lock(catalog_mu_);
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("table not found: " + name);
  }
  query_cache_->EvictRelation(it->second.identity());
  tables_.erase(it);
  BumpCatalogVersionLocked();
  return Status::OK();
}

std::vector<std::string> Database::TableNames() const {
  std::shared_lock<std::shared_mutex> lock(catalog_mu_);
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, rel] : tables_) out.push_back(rel.name());
  return out;
}

Result<Relation> Database::Query(const std::string& sql) const {
  RMA_ASSIGN_OR_RETURN(SelectStmtPtr stmt, ParseSelect(sql));
  ExecContext ctx(rma_options, query_cache_);
  return ExecuteSelectCached(*this, *stmt,
                             QueryCache::NormalizeStatement(sql), &ctx);
}

Result<Relation> Database::Execute(const std::string& sql) {
  RMA_ASSIGN_OR_RETURN(Statement stmt, Parse(sql));
  return ExecuteParsed(std::move(stmt), sql);
}

Result<Relation> Database::ExecuteParsed(Statement&& stmt,
                                         const std::string& sql) {
  switch (stmt.kind) {
    case Statement::Kind::kSelect: {
      ExecContext ctx(rma_options, query_cache_);
      return ExecuteSelectCached(*this, *stmt.select,
                                 QueryCache::NormalizeStatement(sql), &ctx);
    }
    case Statement::Kind::kCreateTableAs: {
      // No plan-cache consult: the Register below bumps the catalog version,
      // which would invalidate a just-stored plan before it could ever hit.
      // The context still borrows the shared cache, so prepared arguments
      // (sort/alignment permutations) are reused and kept warm.
      ExecContext ctx(rma_options, query_cache_);
      RMA_ASSIGN_OR_RETURN(Relation rel,
                           ExecuteSelect(*this, *stmt.select, &ctx));
      RMA_RETURN_NOT_OK(Register(stmt.table_name, rel));
      return rel;
    }
    case Statement::Kind::kDropTable: {
      RMA_RETURN_NOT_OK(Drop(stmt.table_name));
      return Relation();
    }
    case Statement::Kind::kExplain:
      return ExplainStatement(*this, stmt, sql);
  }
  return Status::Invalid("unreachable statement kind");
}

std::vector<Result<Relation>> Database::ExecuteBatch(
    const std::vector<std::string>& statements) {
  const size_t n = statements.size();
  std::vector<Result<Relation>> results(
      n, Result<Relation>(Status::Invalid("statement not executed")));
  // Parse everything up front so runs of independent statements are known
  // before execution starts.
  std::vector<Result<Statement>> parsed;
  parsed.reserve(n);
  for (const std::string& sql : statements) parsed.push_back(Parse(sql));

  size_t i = 0;
  while (i < n) {
    if (!parsed[i].ok()) {
      results[i] = parsed[i].status();
      ++i;
      continue;
    }
    if (parsed[i]->kind != Statement::Kind::kSelect) {
      // Catalog mutations (and EXPLAIN, whose rendering should observe a
      // settled cache) are barriers executed serially in sequence position.
      results[i] = ExecuteParsed(std::move(*parsed[i]), statements[i]);
      ++i;
      continue;
    }
    // Maximal run of SELECT statements: read-only over the catalog, so they
    // are independent of each other and run concurrently over one context.
    size_t j = i;
    while (j < n && parsed[j].ok() &&
           parsed[j]->kind == Statement::Kind::kSelect) {
      ++j;
    }
    const size_t count = j - i;
    const int budget = rma_options.max_threads > 0 ? rma_options.max_threads
                                                   : DefaultThreadCount();
    ExecContext ctx(rma_options, query_cache_);
    if (count == 1 || budget < 2) {
      for (size_t k = i; k < j; ++k) {
        results[k] = ExecuteSelectCached(
            *this, *parsed[k]->select,
            QueryCache::NormalizeStatement(statements[k]), &ctx);
      }
    } else {
      // Dispatch the run in waves of at most `budget` statements so no more
      // than `budget` are ever in flight (the pool is sized to the hardware,
      // not the user's cap), and split the statement-level thread budget
      // across each wave; each statement's kernels (and its own subtree
      // forks) inherit the share via the ambient ScopedThreadBudget.
      for (size_t base = i; base < j;
           base += static_cast<size_t>(budget)) {
        const size_t wave_end =
            std::min(j, base + static_cast<size_t>(budget));
        const int share = std::max(
            1, budget / static_cast<int>(wave_end - base));
        std::vector<ThreadPool::TaskPtr> tasks;
        tasks.reserve(wave_end - base);
        for (size_t k = base; k < wave_end; ++k) {
          const SelectStmtPtr select = parsed[k]->select;
          const std::string* sql = &statements[k];
          Result<Relation>* slot = &results[k];
          tasks.push_back(ThreadPool::Shared().Submit([this, &ctx, select,
                                                       sql, slot, share] {
            ScopedThreadBudget budget_share(share);
            *slot = ExecuteSelectCached(*this, *select,
                                        QueryCache::NormalizeStatement(*sql),
                                        &ctx);
          }));
        }
        // Join every task before letting any exception escape: a rethrow
        // with tasks still in flight would unwind ctx/results/parsed while
        // running tasks reference them.
        std::exception_ptr first_error;
        for (const auto& task : tasks) {
          try {
            ThreadPool::Shared().Wait(task);
          } catch (...) {
            if (first_error == nullptr) {
              first_error = std::current_exception();
            }
          }
        }
        if (first_error != nullptr) std::rethrow_exception(first_error);
      }
    }
    i = j;
  }
  return results;
}

std::vector<Result<Relation>> Database::ExecuteScript(
    const std::string& script) {
  Result<std::vector<std::string>> statements = SplitStatements(script);
  if (!statements.ok()) {
    return {Result<Relation>(statements.status())};
  }
  return ExecuteBatch(*statements);
}

}  // namespace rma::sql
