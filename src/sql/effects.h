#ifndef RMA_SQL_EFFECTS_H_
#define RMA_SQL_EFFECTS_H_

#include <string>
#include <vector>

#include "sql/ast.h"

namespace rma::sql {

/// The catalog footprint of one parsed statement: which base tables it
/// reads and which it creates, drops, or replaces. Effects drive the two
/// consumers that used to rely on coarse global state:
///
///  - **batch scheduling** (Database::ExecuteBatch): a statement only waits
///    on earlier statements whose write set intersects its read/write sets,
///    so a CTAS fences only statements touching its table and independent
///    DDL+SELECT interleavings run concurrently (plain EXPLAIN, which
///    writes nothing, is never a barrier);
///  - **per-table plan invalidation** (QueryCache): the read set names the
///    base tables a cached statement plan depends on, so a catalog mutation
///    evicts only the plans touching the mutated table.
///
/// All names are lower-cased (the catalog is case-insensitive), sorted, and
/// de-duplicated. Reads reach through joins, subqueries, and relational
/// matrix operation arguments to the base tables at the leaves; every table
/// reference in this grammar is a named base table, so attribution is
/// complete — `barrier` stays available as the conservative escape hatch
/// for a future statement kind whose footprint cannot be named.
struct StatementEffects {
  std::vector<std::string> reads;   ///< base tables the statement scans
  std::vector<std::string> writes;  ///< tables created/dropped/replaced
  /// Unattributable footprint: conflicts with every other statement.
  bool barrier = false;
};

/// Lower-cased, sorted, unique base-table names a SELECT reads (through
/// joins, subqueries, and matrix-operation arguments).
std::vector<std::string> ReadTables(const SelectStmt& stmt);

/// Extracts the effects of one parsed statement:
///  - SELECT:            reads its base tables, writes nothing;
///  - CREATE TABLE AS:   reads the select's tables, writes the target;
///  - DROP TABLE:        writes the dropped table;
///  - EXPLAIN [ANALYZE]: reads the explained select's tables; only
///    EXPLAIN ANALYZE of a CREATE TABLE AS writes (it registers the
///    result — plain EXPLAIN executes nothing).
StatementEffects AnalyzeEffects(const Statement& stmt);

/// Whether `later` must wait for `earlier` (statement order matters: the
/// relation is not symmetric in meaning, though the predicate is). True on
/// any write/read, write/write, or read/write overlap — the classic RAW /
/// WAW / WAR hazards over table names — or when either side is a barrier.
bool EffectsConflict(const StatementEffects& earlier,
                     const StatementEffects& later);

/// Dependency-DAG wave assignment: wave[i] is the longest conflict chain
/// ending at statement i (0 when i conflicts with no earlier statement).
/// Statements sharing a wave are pairwise independent and may execute
/// concurrently; waves execute in index order. Deterministic — tests assert
/// exact wave numbers to pin scheduling behavior.
std::vector<int> ScheduleWaves(const std::vector<StatementEffects>& effects);

}  // namespace rma::sql

#endif  // RMA_SQL_EFFECTS_H_
