#include "sql/effects.h"

#include <algorithm>

#include "util/string_util.h"

namespace rma::sql {

namespace {

void CollectFromRef(const TableRefPtr& ref, std::vector<std::string>* out);

void CollectFromSelect(const SelectStmt& stmt, std::vector<std::string>* out) {
  if (stmt.from != nullptr) CollectFromRef(stmt.from, out);
  // WHERE / GROUP BY / ORDER BY reference columns of the FROM result, never
  // tables of their own, so the FROM walk is the whole read set.
}

void CollectFromRef(const TableRefPtr& ref, std::vector<std::string>* out) {
  if (ref == nullptr) return;
  switch (ref->kind) {
    case TableRef::Kind::kTable:
      out->push_back(ToLower(ref->table_name));
      return;
    case TableRef::Kind::kSubquery:
      if (ref->subquery != nullptr) CollectFromSelect(*ref->subquery, out);
      return;
    case TableRef::Kind::kRmaOp:
      for (const RmaArg& arg : ref->rma_args) CollectFromRef(arg.table, out);
      return;
    case TableRef::Kind::kJoin:
      CollectFromRef(ref->left, out);
      CollectFromRef(ref->right, out);
      return;
  }
}

std::vector<std::string> SortedUnique(std::vector<std::string> names) {
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

/// Both sides sorted and unique: linear-merge intersection test.
bool Intersects(const std::vector<std::string>& a,
                const std::vector<std::string>& b) {
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      return true;
    }
  }
  return false;
}

}  // namespace

std::vector<std::string> ReadTables(const SelectStmt& stmt) {
  std::vector<std::string> names;
  CollectFromSelect(stmt, &names);
  return SortedUnique(std::move(names));
}

StatementEffects AnalyzeEffects(const Statement& stmt) {
  StatementEffects effects;
  switch (stmt.kind) {
    case Statement::Kind::kSelect:
      if (stmt.select != nullptr) effects.reads = ReadTables(*stmt.select);
      break;
    case Statement::Kind::kCreateTableAs:
      if (stmt.select != nullptr) effects.reads = ReadTables(*stmt.select);
      effects.writes.push_back(ToLower(stmt.table_name));
      break;
    case Statement::Kind::kDropTable:
      effects.writes.push_back(ToLower(stmt.table_name));
      break;
    case Statement::Kind::kExplain:
      if (stmt.select != nullptr) effects.reads = ReadTables(*stmt.select);
      // Plain EXPLAIN renders without executing — no side effects, so it
      // schedules exactly like the SELECT it explains. EXPLAIN ANALYZE of a
      // CREATE TABLE AS registers the result, which is a write.
      if (stmt.analyze && stmt.explain_create) {
        effects.writes.push_back(ToLower(stmt.table_name));
      }
      break;
  }
  return effects;
}

bool EffectsConflict(const StatementEffects& earlier,
                     const StatementEffects& later) {
  if (earlier.barrier || later.barrier) return true;
  return Intersects(earlier.writes, later.reads) ||   // read-after-write
         Intersects(earlier.writes, later.writes) ||  // write-after-write
         Intersects(earlier.reads, later.writes);     // write-after-read
}

std::vector<int> ScheduleWaves(const std::vector<StatementEffects>& effects) {
  std::vector<int> wave(effects.size(), 0);
  for (size_t i = 0; i < effects.size(); ++i) {
    for (size_t j = 0; j < i; ++j) {
      if (EffectsConflict(effects[j], effects[i])) {
        wave[i] = std::max(wave[i], wave[j] + 1);
      }
    }
  }
  return wave;
}

}  // namespace rma::sql
