#include "sql/executor.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <numeric>
#include <sstream>
#include <unordered_set>

#include "core/algebra.h"
#include "core/calibration.h"
#include "core/exec_context.h"
#include "core/planner.h"
#include "core/query_cache.h"
#include "core/rma.h"
#include "core/scheduler.h"
#include "matrix/simd.h"
#include "rel/operators.h"
#include "sql/database.h"
#include "sql/effects.h"
#include "storage/bat_ops.h"
#include "storage/paged_bat.h"
#include "storage/paged_store.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace rma::sql {

namespace {

/// Per-statement plan-cache cursor threaded through FROM evaluation. On a
/// hit, `hit` serves the statement's relational matrix operations in
/// traversal order; on a miss, built ops are appended to `record` and stored
/// at statement end. Null means the statement runs uncached (nested
/// evaluation inside a matrix-operation argument, or legacy entry points).
struct PlanCacheState {
  const QueryCache::StatementPlan* hit = nullptr;
  size_t cursor = 0;
  std::vector<QueryCache::CachedOp>* record = nullptr;
  /// When recording, every base-table bind appends its (name, identity)
  /// here — the identities actually embedded in the recorded expressions,
  /// which anchor the stored plan's per-table validity (a future lookup
  /// hits only while the catalog still maps each name to that exact
  /// relation). Unlike `record`, this survives into nested evaluation of
  /// matrix-operation arguments: their leaves are embedded in the recorded
  /// expression too.
  QueryCache::TableSnapshot* binds = nullptr;
};

/// A relation flowing through the executor, with per-column resolution
/// metadata: the original (pre-uniquification) attribute name and the table
/// alias it came from. Both aligned with column positions.
struct Bound {
  Relation rel;
  std::vector<std::string> names;  ///< original attribute names
  std::vector<std::string> quals;  ///< table alias per column ("" if none)
};

Bound BindRelation(Relation rel, const std::string& alias) {
  Bound b;
  b.names = rel.schema().Names();
  b.quals.assign(b.names.size(), alias);
  b.rel = std::move(rel);
  return b;
}

bool IsAggregateName(const std::string& fn) {
  const std::string f = ToUpper(fn);
  return f == "COUNT" || f == "SUM" || f == "AVG" || f == "MIN" || f == "MAX";
}

bool ContainsAggregate(const SqlExprPtr& e) {
  if (e == nullptr) return false;
  if (e->kind == SqlExpr::Kind::kCall && IsAggregateName(e->name)) return true;
  for (const auto& a : e->args) {
    if (ContainsAggregate(a)) return true;
  }
  return false;
}

/// Resolves a (possibly qualified) column reference to a position.
Result<int> ResolveColumn(const Bound& b, const std::string& qualifier,
                          const std::string& name) {
  int found = -1;
  for (size_t i = 0; i < b.names.size(); ++i) {
    if (!EqualsIgnoreCase(b.names[i], name)) continue;
    if (!qualifier.empty() && !EqualsIgnoreCase(b.quals[i], qualifier)) {
      continue;
    }
    if (found >= 0) {
      return Status::KeyError("ambiguous column reference: " + name);
    }
    found = static_cast<int>(i);
  }
  if (found < 0) {
    const std::string full =
        qualifier.empty() ? name : qualifier + "." + name;
    return Status::KeyError("unknown column: " + full);
  }
  return found;
}

/// Rewrites a SQL expression into a rel::Expr with positional column refs.
/// Aggregates are rejected (the caller extracts them beforehand).
Result<rel::ExprPtr> ResolveScalar(const SqlExprPtr& e, const Bound& b) {
  switch (e->kind) {
    case SqlExpr::Kind::kColumn: {
      RMA_ASSIGN_OR_RETURN(int idx, ResolveColumn(b, e->qualifier, e->name));
      return rel::Expr::ColumnAt(idx);
    }
    case SqlExpr::Kind::kLiteral:
      return rel::Expr::Literal(e->literal);
    case SqlExpr::Kind::kUnary: {
      RMA_ASSIGN_OR_RETURN(rel::ExprPtr x, ResolveScalar(e->args[0], b));
      return rel::Expr::Unary(e->name, std::move(x));
    }
    case SqlExpr::Kind::kBinary: {
      RMA_ASSIGN_OR_RETURN(rel::ExprPtr l, ResolveScalar(e->args[0], b));
      RMA_ASSIGN_OR_RETURN(rel::ExprPtr r, ResolveScalar(e->args[1], b));
      return rel::Expr::Binary(e->name, std::move(l), std::move(r));
    }
    case SqlExpr::Kind::kCall: {
      if (IsAggregateName(e->name)) {
        return Status::Invalid("aggregate " + e->name +
                               " is not allowed in this context");
      }
      std::vector<rel::ExprPtr> args;
      for (const auto& a : e->args) {
        RMA_ASSIGN_OR_RETURN(rel::ExprPtr x, ResolveScalar(a, b));
        args.push_back(std::move(x));
      }
      return rel::Expr::Call(e->name, std::move(args));
    }
    case SqlExpr::Kind::kStar:
      return Status::Invalid("'*' is not allowed in this context");
  }
  return Status::Invalid("unreachable SQL expression kind");
}

std::string DeriveName(const SqlExprPtr& e, int fallback_index) {
  if (e->kind == SqlExpr::Kind::kColumn) return e->name;
  if (e->kind == SqlExpr::Kind::kCall) return ToLower(e->name);
  return "col" + std::to_string(fallback_index);
}

std::vector<std::string> UniquifyNames(std::vector<std::string> names) {
  std::unordered_set<std::string> used;
  for (auto& n : names) {
    std::string candidate = n;
    int suffix = 2;
    while (!used.insert(candidate).second) {
      candidate = n + "_" + std::to_string(suffix++);
    }
    n = std::move(candidate);
  }
  return names;
}

// --- FROM evaluation --------------------------------------------------------

Result<Bound> EvaluateTableRef(const Database& db, const TableRefPtr& ref,
                               ExecContext* ctx, PlanCacheState* pcs);

/// Turns a (possibly nested) FROM-clause operation reference into an
/// algebra expression: kRmaOp children stay symbolic so the rewriter can
/// match across nesting levels; any other reference is evaluated here and
/// becomes a leaf. Leaf evaluation runs outside the plan-cache *cursor*
/// (hit/record null): its results are embedded in the built expression,
/// which the cache stores whole — recording nested operations separately
/// would double-count them and desynchronize the hit-path cursor. Only the
/// bind channel (`binds`) flows through, so base tables bound inside nested
/// arguments still anchor the stored plan's validity.
Result<RmaExprPtr> BuildRmaExpr(const Database& db, const TableRefPtr& ref,
                                ExecContext* ctx,
                                QueryCache::TableSnapshot* binds) {
  if (ref->kind != TableRef::Kind::kRmaOp) {
    PlanCacheState nested;
    nested.binds = binds;
    RMA_ASSIGN_OR_RETURN(Bound b, EvaluateTableRef(db, ref, ctx, &nested));
    return RmaExpr::Leaf(std::move(b.rel));
  }
  auto expr = std::make_shared<RmaExpr>();
  expr->kind = RmaExpr::Kind::kOp;
  expr->op = ref->op;
  expr->alias = ref->alias;
  for (const auto& a : ref->rma_args) {
    RMA_ASSIGN_OR_RETURN(RmaExprPtr child,
                         BuildRmaExpr(db, a.table, ctx, binds));
    expr->children.push_back(std::move(child));
    expr->orders.push_back(a.order);
  }
  return expr;
}

/// Splits an ON condition into equi-join pairs (left index, right index)
/// plus a residual predicate evaluated after the join.
void CollectJoinConditions(const SqlExprPtr& e, std::vector<SqlExprPtr>* out) {
  if (e->kind == SqlExpr::Kind::kBinary && ToUpper(e->name) == "AND") {
    CollectJoinConditions(e->args[0], out);
    CollectJoinConditions(e->args[1], out);
    return;
  }
  out->push_back(e);
}

Result<Bound> EvaluateJoin(const Database& db, const TableRef& ref,
                           ExecContext* ctx, PlanCacheState* pcs) {
  RMA_ASSIGN_OR_RETURN(Bound left, EvaluateTableRef(db, ref.left, ctx, pcs));
  RMA_ASSIGN_OR_RETURN(Bound right, EvaluateTableRef(db, ref.right, ctx, pcs));
  Bound combined;
  combined.names = left.names;
  combined.names.insert(combined.names.end(), right.names.begin(),
                        right.names.end());
  combined.quals = left.quals;
  combined.quals.insert(combined.quals.end(), right.quals.begin(),
                        right.quals.end());
  const int left_cols = left.rel.num_columns();

  if (ref.join_kind == TableRef::JoinKind::kCross || ref.on == nullptr) {
    RMA_ASSIGN_OR_RETURN(combined.rel, rel::CrossJoin(left.rel, right.rel));
    return combined;
  }
  // INNER JOIN ... ON: extract equality pairs across the two sides for a
  // hash join; evaluate any residual conjuncts as a post-filter.
  std::vector<SqlExprPtr> conjuncts;
  CollectJoinConditions(ref.on, &conjuncts);
  std::vector<int> lkeys;
  std::vector<int> rkeys;
  std::vector<SqlExprPtr> residual;
  for (const auto& c : conjuncts) {
    bool handled = false;
    if (c->kind == SqlExpr::Kind::kBinary && c->name == "=") {
      const auto& a = c->args[0];
      const auto& bb = c->args[1];
      if (a->kind == SqlExpr::Kind::kColumn &&
          bb->kind == SqlExpr::Kind::kColumn) {
        auto ia = ResolveColumn(combined, a->qualifier, a->name);
        auto ib = ResolveColumn(combined, bb->qualifier, bb->name);
        if (ia.ok() && ib.ok()) {
          int l = *ia;
          int r = *ib;
          if (l > r) std::swap(l, r);
          if (l < left_cols && r >= left_cols) {
            lkeys.push_back(l);
            rkeys.push_back(r - left_cols);
            handled = true;
          }
        }
      }
    }
    if (!handled) residual.push_back(c);
  }
  if (lkeys.empty()) {
    RMA_ASSIGN_OR_RETURN(combined.rel, rel::CrossJoin(left.rel, right.rel));
    residual = conjuncts;
  } else {
    RMA_ASSIGN_OR_RETURN(combined.rel,
                         rel::HashJoinAt(left.rel, right.rel, lkeys, rkeys));
  }
  for (const auto& c : residual) {
    RMA_ASSIGN_OR_RETURN(rel::ExprPtr pred, ResolveScalar(c, combined));
    RMA_ASSIGN_OR_RETURN(combined.rel, rel::Select(combined.rel, pred));
  }
  return combined;
}

Result<Relation> ExecuteSelectImpl(const Database& db, const SelectStmt& stmt,
                                   ExecContext* ctx, PlanCacheState* pcs);

Result<Bound> EvaluateTableRef(const Database& db, const TableRefPtr& ref,
                               ExecContext* ctx, PlanCacheState* pcs) {
  switch (ref->kind) {
    case TableRef::Kind::kTable: {
      RMA_ASSIGN_OR_RETURN(Relation rel, db.Get(ref->table_name));
      if (pcs != nullptr && pcs->binds != nullptr) {
        pcs->binds->emplace_back(ToLower(ref->table_name), rel.identity());
      }
      // Store-backed tables bind as a resident malloc copy: the relational
      // operators and streamed results read row-at-a-time with no Status
      // path, so residency faults (torn-page checksums) must surface here,
      // as this statement's error. Matrix operations (kRmaOp below) keep
      // the paged columns and pin at the staged-executor seam instead.
      RMA_ASSIGN_OR_RETURN(rel, MaterializeUnstable(rel));
      const std::string alias =
          ref->alias.empty() ? ref->table_name : ref->alias;
      rel.set_name(alias);
      return BindRelation(std::move(rel), alias);
    }
    case TableRef::Kind::kSubquery: {
      RMA_ASSIGN_OR_RETURN(Relation rel,
                           ExecuteSelectImpl(db, *ref->subquery, ctx, pcs));
      if (!ref->alias.empty()) rel.set_name(ref->alias);
      return BindRelation(std::move(rel), ref->alias);
    }
    case TableRef::Kind::kRmaOp: {
      // A plan-cache hit serves the whole operation tree: the rewritten
      // expression (leaf relations bound at record time — sound because the
      // catalog version is part of the cache key) evaluates directly, with
      // no rebinding, rewriting, or planning.
      if (pcs != nullptr && pcs->hit != nullptr &&
          pcs->cursor < pcs->hit->ops.size()) {
        const QueryCache::CachedOp& cop = pcs->hit->ops[pcs->cursor++];
        // The cached lowered plan drives the stage scheduler's
        // shape-dependent fork decisions.
        RMA_ASSIGN_OR_RETURN(
            Relation rel,
            EvaluateExpressionConcurrent(cop.rewritten, ctx, cop.plan));
        return BindRelation(std::move(rel), ref->alias);
      }
      // Build the whole nested-operation tree as an algebra expression so
      // the cross-algebra rewriter sees patterns that span FROM-clause
      // nesting levels (e.g. MMU(TRA(w3 BY U) BY C, w3 BY U) → CPD) and
      // the staged pipeline plans, caches, and executes it as one unit.
      RMA_ASSIGN_OR_RETURN(
          RmaExprPtr expr,
          BuildRmaExpr(db, ref, ctx, pcs != nullptr ? pcs->binds : nullptr));
      RewriteReport report;
      const RmaExprPtr rewritten =
          RewriteExpression(expr, ctx->options().rewrites, &report);
      PlanNodePtr lowered;
      if (pcs != nullptr && pcs->record != nullptr) {
        QueryCache::CachedOp cop;
        cop.rewritten = rewritten;
        cop.rewrites = report.applied;
        // Lower the physical plan of what actually executes (the rewritten
        // tree) for EXPLAIN ANALYZE; planning failures surface through
        // evaluation below, not here.
        if (auto plan = PlanExpression(rewritten, ctx->options(), nullptr);
            plan.ok()) {
          cop.plan = *plan;
          lowered = cop.plan;
        }
        pcs->record->push_back(std::move(cop));
      }
      RMA_ASSIGN_OR_RETURN(
          Relation rel, EvaluateExpressionConcurrent(rewritten, ctx, lowered));
      return BindRelation(std::move(rel), ref->alias);
    }
    case TableRef::Kind::kJoin:
      return EvaluateJoin(db, *ref, ctx, pcs);
  }
  return Status::Invalid("unreachable table-ref kind");
}

// --- aggregation ------------------------------------------------------------

struct AggInfo {
  std::string func;
  SqlExprPtr arg;  ///< null for COUNT(*)
};

/// A select item in an aggregating query: either a group-by column or a
/// single aggregate call (standard minimal SQL; richer expressions over
/// aggregates are written as subqueries, as in the paper's example).
Result<Relation> ExecuteAggregation(const SelectStmt& stmt, const Bound& from) {
  // Resolve group-by columns.
  std::vector<int> group_idx;
  for (const auto& g : stmt.group_by) {
    if (g->kind != SqlExpr::Kind::kColumn) {
      return Status::Invalid("GROUP BY supports column references only");
    }
    RMA_ASSIGN_OR_RETURN(int idx, ResolveColumn(from, g->qualifier, g->name));
    group_idx.push_back(idx);
  }
  // Classify select items.
  struct OutItem {
    bool is_group = false;
    int group_pos = -1;    // index into group_idx
    int agg_pos = -1;      // index into aggs
    std::string name;
  };
  std::vector<OutItem> out_items;
  std::vector<AggInfo> aggs;
  int fallback = 0;
  for (const auto& item : stmt.items) {
    if (item.expr->kind == SqlExpr::Kind::kStar) {
      return Status::Invalid("SELECT * cannot be combined with GROUP BY");
    }
    OutItem out;
    out.name = !item.alias.empty() ? item.alias
                                   : DeriveName(item.expr, fallback);
    ++fallback;
    if (item.expr->kind == SqlExpr::Kind::kColumn) {
      RMA_ASSIGN_OR_RETURN(
          int idx, ResolveColumn(from, item.expr->qualifier, item.expr->name));
      auto it = std::find(group_idx.begin(), group_idx.end(), idx);
      if (it == group_idx.end()) {
        return Status::Invalid("column " + item.expr->name +
                               " must appear in GROUP BY or an aggregate");
      }
      out.is_group = true;
      out.group_pos = static_cast<int>(it - group_idx.begin());
    } else if (item.expr->kind == SqlExpr::Kind::kCall &&
               IsAggregateName(item.expr->name)) {
      AggInfo info;
      info.func = ToUpper(item.expr->name);
      if (item.expr->args.size() == 1 &&
          item.expr->args[0]->kind == SqlExpr::Kind::kStar) {
        if (info.func != "COUNT") {
          return Status::Invalid(info.func + "(*) is not supported");
        }
        info.arg = nullptr;
      } else if (item.expr->args.size() == 1) {
        info.arg = item.expr->args[0];
      } else {
        return Status::Invalid("aggregate takes exactly one argument");
      }
      out.agg_pos = static_cast<int>(aggs.size());
      aggs.push_back(std::move(info));
    } else {
      return Status::Invalid(
          "each select item must be a group-by column or an aggregate; use "
          "a subquery for expressions over aggregates");
    }
    out_items.push_back(std::move(out));
  }
  // Pre-projection: group columns g0.. + aggregate arguments a0..
  std::vector<rel::ProjectItem> pre;
  for (size_t g = 0; g < group_idx.size(); ++g) {
    pre.push_back({rel::Expr::ColumnAt(group_idx[g]),
                   "g" + std::to_string(g)});
  }
  for (size_t a = 0; a < aggs.size(); ++a) {
    if (aggs[a].arg == nullptr) continue;  // COUNT(*)
    RMA_ASSIGN_OR_RETURN(rel::ExprPtr e, ResolveScalar(aggs[a].arg, from));
    pre.push_back({std::move(e), "a" + std::to_string(a)});
  }
  if (pre.empty()) {
    // Only COUNT(*) and no grouping: a zero-column projection would lose the
    // row count, so stage a constant column.
    pre.push_back({rel::Expr::LiteralInt(1), "_one"});
  }
  RMA_ASSIGN_OR_RETURN(Relation staged, rel::Project(from.rel, pre));
  // Aggregate.
  std::vector<std::string> group_names;
  for (size_t g = 0; g < group_idx.size(); ++g) {
    group_names.push_back("g" + std::to_string(g));
  }
  std::vector<rel::AggSpec> specs;
  for (size_t a = 0; a < aggs.size(); ++a) {
    specs.push_back({aggs[a].func,
                     aggs[a].arg == nullptr ? "" : "a" + std::to_string(a),
                     "out" + std::to_string(a)});
  }
  RMA_ASSIGN_OR_RETURN(Relation agged,
                       rel::Aggregate(staged, group_names, specs));
  // Final projection in select-list order with output names.
  std::vector<rel::ProjectItem> fin;
  std::vector<std::string> out_names;
  for (const auto& out : out_items) out_names.push_back(out.name);
  out_names = UniquifyNames(std::move(out_names));
  for (size_t i = 0; i < out_items.size(); ++i) {
    const auto& out = out_items[i];
    const std::string src = out.is_group
                                ? "g" + std::to_string(out.group_pos)
                                : "out" + std::to_string(out.agg_pos);
    RMA_ASSIGN_OR_RETURN(int idx, agged.schema().IndexOf(src));
    fin.push_back({rel::Expr::ColumnAt(idx), out_names[i]});
  }
  return rel::Project(agged, fin);
}

// --- ORDER BY ----------------------------------------------------------------

Result<Relation> ApplyOrderBy(Relation rel,
                              const std::vector<OrderItem>& order_by) {
  std::vector<int> key_idx;
  std::vector<bool> asc;
  for (const auto& item : order_by) {
    if (item.expr->kind != SqlExpr::Kind::kColumn) {
      return Status::Invalid("ORDER BY supports column references only");
    }
    RMA_ASSIGN_OR_RETURN(int idx,
                         rel.schema().IndexOfIgnoreCase(item.expr->name));
    key_idx.push_back(idx);
    asc.push_back(item.ascending);
  }
  std::vector<int64_t> perm(static_cast<size_t>(rel.num_rows()));
  std::iota(perm.begin(), perm.end(), 0);
  std::stable_sort(perm.begin(), perm.end(), [&](int64_t a, int64_t b) {
    for (size_t k = 0; k < key_idx.size(); ++k) {
      const Bat& col = *rel.column(key_idx[k]);
      const int c = col.Compare(a, col, b);
      if (c != 0) return asc[k] ? c < 0 : c > 0;
    }
    return false;
  });
  return rel.TakeRows(perm);
}

Result<Relation> ExecuteSelectImpl(const Database& db, const SelectStmt& stmt,
                                   ExecContext* ctx, PlanCacheState* pcs) {
  if (stmt.from == nullptr) {
    return Status::Invalid("query requires a FROM clause");
  }
  RMA_ASSIGN_OR_RETURN(Bound from, EvaluateTableRef(db, stmt.from, ctx, pcs));
  if (stmt.where != nullptr) {
    RMA_ASSIGN_OR_RETURN(rel::ExprPtr pred, ResolveScalar(stmt.where, from));
    RMA_ASSIGN_OR_RETURN(from.rel, rel::Select(from.rel, pred));
  }
  bool has_agg = !stmt.group_by.empty();
  for (const auto& item : stmt.items) {
    if (ContainsAggregate(item.expr)) has_agg = true;
  }
  Relation result;
  if (has_agg) {
    RMA_ASSIGN_OR_RETURN(result, ExecuteAggregation(stmt, from));
  } else {
    std::vector<rel::ProjectItem> items;
    std::vector<std::string> names;
    int fallback = 0;
    for (const auto& item : stmt.items) {
      if (item.expr->kind == SqlExpr::Kind::kStar) {
        for (int c = 0; c < from.rel.num_columns(); ++c) {
          items.push_back({rel::Expr::ColumnAt(c), ""});
          names.push_back(from.rel.schema().attribute(c).name);
        }
        continue;
      }
      RMA_ASSIGN_OR_RETURN(rel::ExprPtr e, ResolveScalar(item.expr, from));
      items.push_back({std::move(e), ""});
      names.push_back(!item.alias.empty() ? item.alias
                                          : DeriveName(item.expr, fallback));
      ++fallback;
    }
    names = UniquifyNames(std::move(names));
    for (size_t i = 0; i < items.size(); ++i) items[i].name = names[i];
    RMA_ASSIGN_OR_RETURN(result, rel::Project(from.rel, items));
  }
  if (!stmt.order_by.empty()) {
    RMA_ASSIGN_OR_RETURN(result, ApplyOrderBy(std::move(result),
                                              stmt.order_by));
  }
  if (stmt.limit >= 0) {
    RMA_ASSIGN_OR_RETURN(result, rel::Limit(result, 0, stmt.limit));
  }
  return result;
}

/// Ensures an elected planning leader always resolves its in-flight entry:
/// destruction without Publish() abandons, waking waiters empty-handed (the
/// statement failed or an exception unwound through planning).
class PlanLeaderGuard {
 public:
  PlanLeaderGuard(QueryCache* cache, const std::string* key)
      : cache_(cache), key_(key) {}
  ~PlanLeaderGuard() {
    if (cache_ != nullptr) cache_->AbandonPlan(*key_);
  }
  void Publish(QueryCache::StatementPlanPtr plan) {
    cache_->PublishPlan(*key_, std::move(plan));
    cache_ = nullptr;
  }
  PlanLeaderGuard(const PlanLeaderGuard&) = delete;
  PlanLeaderGuard& operator=(const PlanLeaderGuard&) = delete;

 private:
  QueryCache* cache_;
  const std::string* key_;
};

/// The caller's current read-set snapshot: the (lower-cased name, identity)
/// of every base table the statement's AST references, as the catalog maps
/// them right now. Returns false — snapshot unusable, fall back to exact
/// catalog-version matching — when a referenced table is absent (the
/// statement is about to fail at bind anyway).
bool SnapshotReadTables(const Database& db, const SelectStmt& stmt,
                        QueryCache::TableSnapshot* snapshot) {
  for (const std::string& name : ReadTables(stmt)) {
    Result<Relation> rel = db.Get(name);
    if (!rel.ok()) return false;
    snapshot->emplace_back(name, rel->identity());
  }
  return true;
}

/// Canonicalizes the binds a recorded statement accumulated into the
/// snapshot stored on its plan: sorted by name, exact duplicates collapsed.
/// Returns false when the same table was bound as two different relations —
/// a catalog mutation landed mid-statement; such a plan embeds a mix of
/// catalog states and must never hit by identity (it is stored under its
/// captured version, which the mutation already left behind).
bool CanonicalizeBinds(QueryCache::TableSnapshot* binds) {
  std::sort(binds->begin(), binds->end());
  binds->erase(std::unique(binds->begin(), binds->end()), binds->end());
  for (size_t i = 1; i < binds->size(); ++i) {
    if ((*binds)[i].first == (*binds)[i - 1].first) return false;
  }
  return true;
}

/// Shared statement runner. With `normalized` set, consults and populates
/// the database's plan cache through the dedupe protocol: identical
/// concurrent statements elect one leader to plan while the rest wait and
/// borrow its plan (ExecuteBatch dispatches whole runs at once — without the
/// election they race to fill the same entry, planning N times). With
/// `normalized` null, records the statement plan without touching the cache
/// (legacy uncached entry points). `plan_out` (optional) receives the plan
/// that served or was recorded.
Result<Relation> RunStatement(const Database& db, const SelectStmt& stmt,
                              const std::string* normalized, ExecContext* ctx,
                              QueryCache::StatementPlanPtr* plan_out) {
  const QueryCachePtr& cache = db.query_cache();
  const uint64_t fingerprint =
      QueryCache::OptionsFingerprint(ctx->options());
  // Capture the catalog version once: looking it up again at store time
  // would race with concurrent Register/Drop — a statement built against
  // the old catalog could be stored under the *new* version and then serve
  // stale relations. Stored under the captured version, a concurrently
  // bumped entry simply never hits and is swept at the next invalidation.
  const uint64_t catalog_version = db.catalog_version();
  // The current identities of the tables the statement reads key the
  // per-table hit rule: the cached plan serves iff the catalog still maps
  // every read table to the exact relation the plan embedded — mutations
  // of *other* tables (which bump the version) cannot cost this plan.
  QueryCache::TableSnapshot current_tables;
  const bool snapshot_ok =
      normalized != nullptr && SnapshotReadTables(db, stmt, &current_tables);
  const QueryCache::TableSnapshot* tables =
      snapshot_ok ? &current_tables : nullptr;
  PlanCacheState pcs;
  QueryCache::StatementPlanPtr used;
  std::unique_ptr<PlanLeaderGuard> leader;
  if (normalized != nullptr) {
    QueryCache::PlanTicket ticket =
        cache->AcquirePlan(*normalized, catalog_version, fingerprint, tables);
    used = std::move(ticket.plan);
    if (ticket.leader) {
      leader = std::make_unique<PlanLeaderGuard>(cache.get(), normalized);
    }
    ctx->RecordPlanCache(used != nullptr);
  }
  std::vector<QueryCache::CachedOp> recorded;
  QueryCache::TableSnapshot bound_tables;
  if (used != nullptr) {
    pcs.hit = used.get();
  } else {
    pcs.record = &recorded;
    pcs.binds = &bound_tables;
  }
  // Buffer-pool counters are store-global; attributing them to this
  // statement means bracketing execution with snapshots and recording the
  // delta. Concurrent statements may interleave pool traffic — the deltas
  // then split the shared activity between them, which is the best a
  // pool-level counter can attribute.
  BufferPoolStats pool_before;
  const std::shared_ptr<PagedStore>& store = db.paged_store();
  if (store != nullptr) pool_before = store->pool()->stats();
  Result<Relation> result = ExecuteSelectImpl(db, stmt, ctx, &pcs);
  if (store != nullptr) {
    const BufferPoolStats after = store->pool()->stats();
    ctx->RecordPoolDelta(after.hits - pool_before.hits,
                         after.misses - pool_before.misses,
                         after.evictions - pool_before.evictions,
                         after.writebacks - pool_before.writebacks);
  }
  if (!result.ok()) return result;  // the guard abandons for a leader
  if (used == nullptr) {
    auto plan = std::make_shared<QueryCache::StatementPlan>();
    plan->ops = std::move(recorded);
    plan->catalog_version = catalog_version;
    plan->options_fingerprint = fingerprint;
    // Anchor validity on the identities actually bound during execution
    // (not the pre-execution snapshot): if the catalog still maps every
    // read table to these exact relations, the embedded leaves *are* the
    // current catalog — regardless of how often unrelated tables changed.
    plan->tables_known = CanonicalizeBinds(&bound_tables);
    plan->base_tables = std::move(bound_tables);
    used = plan;
    if (leader != nullptr) {
      leader->Publish(std::move(plan));
    } else if (normalized != nullptr) {
      cache->StorePlan(*normalized, std::move(plan));
    }
  }
  if (plan_out != nullptr) *plan_out = std::move(used);
  return result;
}

}  // namespace

Result<Relation> ExecuteSelect(const Database& db, const SelectStmt& stmt,
                               ExecContext* ctx) {
  return ExecuteSelectImpl(db, stmt, ctx, /*pcs=*/nullptr);
}

Result<Relation> ExecuteSelect(const Database& db, const SelectStmt& stmt,
                               const RmaOptions& opts) {
  ExecContext ctx(opts);
  return ExecuteSelect(db, stmt, &ctx);
}

Result<Relation> ExecuteSelectCached(const Database& db, const SelectStmt& stmt,
                                     const std::string& normalized,
                                     ExecContext* ctx) {
  return RunStatement(db, stmt, &normalized, ctx, /*plan_out=*/nullptr);
}

// --- EXPLAIN -----------------------------------------------------------------

namespace {

void AppendIndented(const std::string& block, int depth,
                    std::vector<std::string>* lines) {
  std::string line;
  for (char c : block) {
    if (c == '\n') {
      lines->push_back(std::string(static_cast<size_t>(depth) * 2, ' ') + line);
      line.clear();
    } else {
      line += c;
    }
  }
  if (!line.empty()) {
    lines->push_back(std::string(static_cast<size_t>(depth) * 2, ' ') + line);
  }
}

Status ExplainSelectLines(const Database& db, const SelectStmt& stmt,
                          ExecContext* ctx, int depth,
                          std::vector<std::string>* lines);

Status ExplainTableRef(const Database& db, const TableRefPtr& ref,
                       ExecContext* ctx, int depth,
                       std::vector<std::string>* lines) {
  switch (ref->kind) {
    case TableRef::Kind::kTable: {
      RMA_ASSIGN_OR_RETURN(Relation rel, db.Get(ref->table_name));
      AppendIndented("scan " + ref->table_name + " [" +
                         std::to_string(rel.num_rows()) + " rows x " +
                         std::to_string(rel.num_columns()) + " cols]",
                     depth, lines);
      return Status::OK();
    }
    case TableRef::Kind::kSubquery: {
      AppendIndented("subquery" +
                         (ref->alias.empty() ? "" : " AS " + ref->alias) + ":",
                     depth, lines);
      return ExplainSelectLines(db, *ref->subquery, ctx, depth + 1, lines);
    }
    case TableRef::Kind::kJoin: {
      AppendIndented(ref->join_kind == TableRef::JoinKind::kCross
                         ? "cross join"
                         : "inner join",
                     depth, lines);
      RMA_RETURN_NOT_OK(ExplainTableRef(db, ref->left, ctx, depth + 1, lines));
      return ExplainTableRef(db, ref->right, ctx, depth + 1, lines);
    }
    case TableRef::Kind::kRmaOp: {
      RMA_ASSIGN_OR_RETURN(RmaExprPtr expr,
                           BuildRmaExpr(db, ref, ctx, /*binds=*/nullptr));
      RewriteReport report;
      RMA_ASSIGN_OR_RETURN(PlanNodePtr plan,
                           PlanExpression(expr, ctx->options(), &report));
      AppendIndented("relational matrix operation" +
                         (ref->alias.empty() ? "" : " AS " + ref->alias) + ":",
                     depth, lines);
      AppendIndented(RenderPlan(plan), depth + 1, lines);
      std::string fired = "rewrites fired:";
      if (report.applied.empty()) {
        fired += " (none)";
      } else {
        for (const auto& rule : report.applied) fired += " " + rule;
      }
      AppendIndented(fired, depth + 1, lines);
      return Status::OK();
    }
  }
  return Status::Invalid("unreachable table-ref kind");
}

Status ExplainSelectLines(const Database& db, const SelectStmt& stmt,
                          ExecContext* ctx, int depth,
                          std::vector<std::string>* lines) {
  if (stmt.from == nullptr) {
    return Status::Invalid("query requires a FROM clause");
  }
  bool has_agg = !stmt.group_by.empty();
  for (const auto& item : stmt.items) {
    if (ContainsAggregate(item.expr)) has_agg = true;
  }
  AppendIndented(has_agg ? "aggregate + project" : "project", depth, lines);
  if (!stmt.order_by.empty()) AppendIndented("order by", depth, lines);
  if (stmt.limit >= 0) {
    AppendIndented("limit " + std::to_string(stmt.limit), depth, lines);
  }
  if (stmt.where != nullptr) AppendIndented("filter (WHERE)", depth, lines);
  AppendIndented("from:", depth, lines);
  return ExplainTableRef(db, stmt.from, ctx, depth + 1, lines);
}

std::string FormatSecs(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6fs", seconds);
  return buf;
}

Result<Relation> PlanRelation(std::vector<std::string> lines) {
  auto schema = Schema::Make({{"plan", DataType::kString}});
  RMA_RETURN_NOT_OK(schema.status());
  return Relation::Make(std::move(*schema), {MakeStringBat(std::move(lines))},
                        "explain");
}

/// The EXPLAIN ANALYZE execution section: per-operation measured stage
/// times (plans() zipped with op_stats()), statement-level cache
/// provenance, result cardinality, and total wall time.
void AppendExecutionSection(const Database& db, const ExecContext& ctx,
                            const Relation& result, double total_seconds,
                            std::vector<std::string>* lines) {
  lines->push_back("execution:");
  const std::vector<OpPlan>& plans = ctx.plans();
  const std::vector<RmaStats>& stats = ctx.op_stats();
  const size_t n = std::min(plans.size(), stats.size());
  for (size_t i = 0; i < n; ++i) {
    std::ostringstream os;
    os << "op " << i + 1 << ": " << GetOpInfo(plans[i].op).name
       << " kernel=" << KernelChoiceName(plans[i].kernel)
       << " cost-model=" << CostSourceName(plans[i].cost_source)
       << " sort=" << FormatSecs(stats[i].sort_seconds)
       << " gather=" << FormatSecs(stats[i].transform_in_seconds)
       << " kernel=" << FormatSecs(stats[i].compute_seconds)
       << " scatter=" << FormatSecs(stats[i].transform_out_seconds)
       << " morph=" << FormatSecs(stats[i].morph_seconds);
    if (plans[i].shards > 1) {
      os << " merge=" << FormatSecs(stats[i].merge_seconds) << " shards=[";
      for (size_t s = 0; s < stats[i].shard_seconds.size(); ++s) {
        if (s > 0) os << ' ';
        os << FormatSecs(stats[i].shard_seconds[s]);
      }
      os << ']';
    }
    os << " prepared: " << stats[i].prepared_cache_hits << " hit, "
       << stats[i].prepared_cache_misses << " miss";
    AppendIndented(os.str(), 1, lines);
  }
  std::string plan_line = "plan cache: ";
  switch (ctx.plan_cache_outcome()) {
    case ExecContext::PlanCacheOutcome::kHit:
      plan_line += "hit";
      break;
    case ExecContext::PlanCacheOutcome::kMiss:
      plan_line += "miss";
      break;
    case ExecContext::PlanCacheOutcome::kNotConsulted:
      plan_line += "not consulted";
      break;
  }
  plan_line += " (catalog version " + std::to_string(db.catalog_version()) +
               ")";
  AppendIndented(plan_line, 1, lines);
  const CostProfilePtr profile = ResolveCostProfile(ctx.options());
  AppendIndented(std::string("cost profile: ") +
                     CostSourceName(profile->Source()) +
                     (profile->refinable() ? " (refining)" : "") +
                     ", simd=" + simd::Describe() +
                     ", regimes=" + std::to_string(profile->MaxRegimes()),
                 1, lines);
  const RmaStats& totals = ctx.totals();
  AppendIndented("prepared cache: " +
                     std::to_string(totals.prepared_cache_hits) + " hits, " +
                     std::to_string(totals.prepared_cache_misses) +
                     " misses, " +
                     std::to_string(totals.prepared_cache_evictions) +
                     " evictions",
                 1, lines);
  if (db.paged_store() != nullptr ||
      totals.pool_hits + totals.pool_misses + totals.pool_evictions +
              totals.pool_writebacks >
          0) {
    AppendIndented("buffer pool: " + std::to_string(totals.pool_hits) +
                       " hits, " + std::to_string(totals.pool_misses) +
                       " misses, " + std::to_string(totals.pool_evictions) +
                       " evictions, " +
                       std::to_string(totals.pool_writebacks) + " writebacks",
                   1, lines);
  }
  AppendIndented("rows: " + std::to_string(result.num_rows()), 1, lines);
  AppendIndented("total: " + FormatSecs(total_seconds), 1, lines);
}

}  // namespace

Result<Relation> ExplainSelect(const Database& db, const SelectStmt& stmt,
                               const RmaOptions& opts) {
  ExecContext ctx(opts);
  std::vector<std::string> lines;
  RMA_RETURN_NOT_OK(ExplainSelectLines(db, stmt, &ctx, 0, &lines));
  return PlanRelation(std::move(lines));
}

Result<Relation> ExplainStatement(Database& db, const Statement& stmt,
                                  const std::string& sql,
                                  const RmaOptions* session_opts) {
  if (stmt.select == nullptr) {
    return Status::Invalid("EXPLAIN requires a SELECT or CREATE TABLE AS");
  }
  const RmaOptions& opts =
      session_opts != nullptr ? *session_opts : db.rma_options;
  std::vector<std::string> lines;
  if (!stmt.analyze) {
    // Plain EXPLAIN: render the full relational pipeline without executing
    // (a CREATE TABLE AS is not registered). The scratch context carries a
    // private cache so shape-binding work (which may evaluate subqueries
    // nested inside matrix-operation arguments) does not pre-warm the
    // shared cache.
    const int depth = stmt.explain_create ? 1 : 0;
    if (stmt.explain_create) {
      lines.push_back("create table " + stmt.table_name +
                      " as [not executed]");
    }
    ExecContext plan_ctx(opts);
    RMA_RETURN_NOT_OK(
        ExplainSelectLines(db, *stmt.select, &plan_ctx, depth, &lines));
    return PlanRelation(std::move(lines));
  }

  // EXPLAIN ANALYZE: execute through the database's plan cache and render
  // the statement plan that actually served (or was recorded by) the run —
  // the cached lowered PlanNode trees — followed by the measured execution
  // section. CREATE TABLE AS registers its result (side effects are part of
  // execution) and consults the cache like any statement: invalidation is
  // per-table, so its own Register only evicts the stored plan when the
  // select reads the table it replaces.
  if (stmt.explain_create) {
    lines.push_back("create table " + stmt.table_name + " as");
  }
  ExecContext ctx(opts, db.query_cache());
  const std::string normalized = QueryCache::NormalizeStatement(sql);
  QueryCache::StatementPlanPtr plan_used;
  Timer timer;
  RMA_ASSIGN_OR_RETURN(
      Relation result,
      RunStatement(db, *stmt.select, &normalized, &ctx, &plan_used));
  const double total_seconds = timer.Seconds();
  if (stmt.explain_create) {
    RMA_RETURN_NOT_OK(db.Register(stmt.table_name, result));
  }
  if (plan_used != nullptr) {
    for (const QueryCache::CachedOp& cop : plan_used->ops) {
      lines.push_back("relational matrix operation:");
      if (cop.plan != nullptr) AppendIndented(RenderPlan(cop.plan), 1, &lines);
      std::string fired = "rewrites fired:";
      if (cop.rewrites.empty()) {
        fired += " (none)";
      } else {
        for (const auto& rule : cop.rewrites) fired += " " + rule;
      }
      AppendIndented(fired, 1, &lines);
    }
  }
  AppendExecutionSection(db, ctx, result, total_seconds, &lines);
  return PlanRelation(std::move(lines));
}

}  // namespace rma::sql
