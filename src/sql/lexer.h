#ifndef RMA_SQL_LEXER_H_
#define RMA_SQL_LEXER_H_

#include <string>
#include <vector>

#include "util/result.h"

namespace rma::sql {

enum class TokenKind : int {
  kIdent,     ///< identifier or keyword (keywords resolved by the parser)
  kInt,       ///< integer literal
  kFloat,     ///< floating-point literal
  kString,    ///< 'single-quoted' string literal ('' escapes a quote)
  kSymbol,    ///< operator/punctuation: ( ) , . * + - / % < <= > >= = <> !=
  kEnd,       ///< end of input
};

struct Token {
  TokenKind kind;
  std::string text;  ///< identifier/symbol text or literal spelling
  int64_t int_value = 0;
  double float_value = 0.0;
  size_t position = 0;  ///< byte offset (for error messages)
};

/// Tokenizes a SQL statement. ParseError on malformed literals.
Result<std::vector<Token>> Lex(const std::string& input);

}  // namespace rma::sql

#endif  // RMA_SQL_LEXER_H_
