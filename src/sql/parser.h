#ifndef RMA_SQL_PARSER_H_
#define RMA_SQL_PARSER_H_

#include <string>
#include <vector>

#include "sql/ast.h"
#include "util/result.h"

namespace rma::sql {

/// Parses one SQL statement (trailing semicolon optional).
///
/// Supported grammar (case-insensitive keywords):
///   SELECT items FROM from [WHERE e] [GROUP BY cols] [ORDER BY cols [DESC]]
///     [LIMIT n]
///   CREATE TABLE name AS select ; DROP TABLE name
///   EXPLAIN [ANALYZE] (select | CREATE TABLE name AS select)
///   from:  ref ([CROSS] JOIN ref [ON e] | ',' ref)*
///   ref:   table [AS? alias] | '(' select ')' alias
///        | RMAOP '(' arg [',' arg] ')' [alias]      -- INV, MMU, TRA, ...
///   arg:   ref BY col | ref BY '(' col, ... ')'
Result<Statement> Parse(const std::string& input);

/// Parses a bare SELECT query.
Result<SelectStmtPtr> ParseSelect(const std::string& input);

/// Splits a multi-statement script on top-level semicolons (a ';' inside a
/// string literal or a line/block comment is respected via the lexer) into
/// the original statement texts, preserving each statement's spelling so
/// plan-cache normalization sees exactly what a single-statement call
/// would. Empty statements (';;', trailing ';') are dropped. ParseError on
/// malformed input.
Result<std::vector<std::string>> SplitStatements(const std::string& script);

}  // namespace rma::sql

#endif  // RMA_SQL_PARSER_H_
