#ifndef RMA_SQL_AST_H_
#define RMA_SQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "core/ops.h"
#include "storage/value.h"

namespace rma::sql {

/// Scalar expression AST (pre-analysis: columns referenced by name with an
/// optional table qualifier; aggregates appear as function calls).
struct SqlExpr;
using SqlExprPtr = std::shared_ptr<SqlExpr>;

struct SqlExpr {
  enum class Kind { kColumn, kLiteral, kBinary, kUnary, kCall, kStar };
  Kind kind;
  std::string qualifier;            ///< kColumn: optional table alias
  std::string name;                 ///< column / operator / function name
  Value literal = Value(int64_t{0}); ///< kLiteral
  std::vector<SqlExprPtr> args;     ///< operands / call arguments

  static SqlExprPtr Column(std::string qual, std::string nm) {
    auto e = std::make_shared<SqlExpr>();
    e->kind = Kind::kColumn;
    e->qualifier = std::move(qual);
    e->name = std::move(nm);
    return e;
  }
  static SqlExprPtr Lit(Value v) {
    auto e = std::make_shared<SqlExpr>();
    e->kind = Kind::kLiteral;
    e->literal = std::move(v);
    return e;
  }
  static SqlExprPtr Binary(std::string op, SqlExprPtr l, SqlExprPtr r) {
    auto e = std::make_shared<SqlExpr>();
    e->kind = Kind::kBinary;
    e->name = std::move(op);
    e->args = {std::move(l), std::move(r)};
    return e;
  }
  static SqlExprPtr Unary(std::string op, SqlExprPtr x) {
    auto e = std::make_shared<SqlExpr>();
    e->kind = Kind::kUnary;
    e->name = std::move(op);
    e->args = {std::move(x)};
    return e;
  }
  static SqlExprPtr Call(std::string fn, std::vector<SqlExprPtr> a) {
    auto e = std::make_shared<SqlExpr>();
    e->kind = Kind::kCall;
    e->name = std::move(fn);
    e->args = std::move(a);
    return e;
  }
  static SqlExprPtr Star() {
    auto e = std::make_shared<SqlExpr>();
    e->kind = Kind::kStar;
    return e;
  }
};

struct SelectStmt;
using SelectStmtPtr = std::shared_ptr<SelectStmt>;

/// A table reference in FROM: base table, subquery, or a relational matrix
/// operation `OP(arg BY cols, ...)` (the paper's SQL extension, Sec. 7.2).
struct TableRef;
using TableRefPtr = std::shared_ptr<TableRef>;

struct RmaArg {
  TableRefPtr table;
  std::vector<std::string> order;  ///< BY attribute list
};

struct TableRef {
  enum class Kind { kTable, kSubquery, kRmaOp, kJoin };
  Kind kind;
  std::string alias;  ///< empty if none

  // kTable
  std::string table_name;
  // kSubquery
  SelectStmtPtr subquery;
  // kRmaOp
  MatrixOp op = MatrixOp::kInv;
  std::vector<RmaArg> rma_args;
  // kJoin
  enum class JoinKind { kInner, kCross };
  JoinKind join_kind = JoinKind::kCross;
  TableRefPtr left;
  TableRefPtr right;
  SqlExprPtr on;  ///< null for cross joins
};

struct SelectItem {
  SqlExprPtr expr;     ///< kStar for SELECT *
  std::string alias;   ///< empty: derived from the expression
};

struct OrderItem {
  SqlExprPtr expr;  ///< column reference
  bool ascending = true;
};

struct SelectStmt {
  std::vector<SelectItem> items;
  TableRefPtr from;
  SqlExprPtr where;                 ///< may be null
  std::vector<SqlExprPtr> group_by; ///< column references
  std::vector<OrderItem> order_by;
  int64_t limit = -1;               ///< -1: no limit
};

/// Top-level statement: a query, CREATE TABLE name AS query, DROP TABLE, or
/// EXPLAIN [ANALYZE] over a query or a CREATE TABLE AS. Plain EXPLAIN
/// renders the physical plan without executing; EXPLAIN ANALYZE executes the
/// statement (including the CREATE TABLE AS registration) and annotates the
/// plan with measured stage times and cache provenance.
struct Statement {
  enum class Kind { kSelect, kCreateTableAs, kDropTable, kExplain };
  Kind kind = Kind::kSelect;
  SelectStmtPtr select;     ///< kSelect / kCreateTableAs / kExplain
  std::string table_name;   ///< kCreateTableAs / kDropTable / explained CTAS
  bool analyze = false;     ///< kExplain: EXPLAIN ANALYZE
  bool explain_create = false;  ///< kExplain: the explained statement is a
                                ///< CREATE TABLE table_name AS select
};

}  // namespace rma::sql

#endif  // RMA_SQL_AST_H_
