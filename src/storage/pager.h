#ifndef RMA_STORAGE_PAGER_H_
#define RMA_STORAGE_PAGER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "util/mutex.h"
#include "util/result.h"
#include "util/status.h"

namespace rma {

/// FNV-1a 64-bit hash, seeded. The storage tier's checksum primitive: cheap,
/// endian-stable for our fixed little-endian on-disk integers, and good
/// enough to detect torn writes (the threat model is a crash mid-write, not
/// an adversary).
uint64_t StorageChecksum(const void* data, size_t n, uint64_t seed = 0);

/// A fixed-size-page column file.
///
/// On-disk layout (all integers little-endian, native — we do not support
/// cross-endian data directories):
///
///   page 0          file header: magic, format version, page size, page
///                   count, header checksum. Rewritten (and fsynced last)
///                   whenever the extent map grows, so a crash between data
///                   writes and the header write leaves the old, valid
///                   header in place.
///   page 1..N      data pages: [u64 checksum][u64 page id][payload]. The
///                   checksum covers the page id and the payload, so a page
///                   written for one slot can never be mistaken for another
///                   (detects misdirected writes as well as torn ones).
///
/// Pages are allocated in contiguous *extents* (one extent per column tail)
/// so a pinned column is one contiguous buffer-pool frame and the SIMD fast
/// paths keep their raw pointers. There is no free list: column files are
/// immutable once written (Register replaces the whole file), so the only
/// allocation pattern is append.
///
/// Thread safety: reads use positional pread and may run concurrently;
/// allocation and header writes are serialized by `mu_`.
class Pager {
 public:
  static constexpr int64_t kDefaultPageBytes = 64 * 1024;
  static constexpr int64_t kMinPageBytes = 512;
  static constexpr int64_t kPageHeaderBytes = 16;  // checksum + page id
  static constexpr uint64_t kMagic = 0x3152504741'4d52ull;  // "RMAGPR1" tag

  /// Creates (truncating) a page file with the given page size.
  static Result<std::shared_ptr<Pager>> Create(const std::string& path,
                                               int64_t page_bytes);

  /// Opens an existing page file, verifying the header checksum, magic and
  /// format version. Data-page checksums are verified lazily on ReadPage.
  static Result<std::shared_ptr<Pager>> Open(const std::string& path);

  ~Pager();
  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  const std::string& path() const { return path_; }
  int64_t page_bytes() const { return page_bytes_; }
  /// Payload capacity of one data page.
  int64_t payload_bytes() const { return page_bytes_ - kPageHeaderBytes; }
  /// Number of allocated data pages (page ids are 1-based; 0 is the header).
  uint64_t page_count() const;
  /// Process-unique id; the buffer pool keys frames on it so a recycled
  /// Pager* can never alias a dead file's cached pages.
  uint64_t id() const { return id_; }

  /// Reserves `n_pages` contiguous data pages; returns the first page id.
  /// Persists the new page count (data region is extended and the header
  /// rewritten + fsynced by the next Sync()).
  Result<uint64_t> AllocateExtent(uint64_t n_pages);

  /// Reads one data page's payload (payload_bytes() bytes) into `payload`,
  /// verifying the stored checksum; a mismatch is the torn-page signal and
  /// comes back as IoError mentioning "checksum".
  Status ReadPage(uint64_t page, void* payload) const;

  /// Writes one data page's payload, stamping [checksum][page id] ahead of
  /// it. Durable only after Sync().
  Status WritePage(uint64_t page, const void* payload);

  /// fsyncs data pages, then rewrites + fsyncs the header. Ordering matters:
  /// the header's page count is the commit record for AllocateExtent.
  Status Sync();

 private:
  Pager(std::string path, int fd, int64_t page_bytes, uint64_t page_count);

  Status WriteHeaderLocked() RMA_REQUIRES(mu_);

  const std::string path_;
  const int fd_;
  const int64_t page_bytes_;
  const uint64_t id_;
  mutable Mutex mu_;
  uint64_t page_count_ RMA_GUARDED_BY(mu_);
};

}  // namespace rma

#endif  // RMA_STORAGE_PAGER_H_
