#ifndef RMA_STORAGE_VALUE_H_
#define RMA_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "storage/data_type.h"

namespace rma {

/// A single (non-null) cell value. Used at module boundaries (row building,
/// SQL evaluation, tests); hot paths operate on typed columns directly.
using Value = std::variant<int64_t, double, std::string>;

/// Dynamic type of a value.
DataType ValueType(const Value& v);

/// Rendering used by relation printing and the column cast (▽U).
std::string ValueToString(const Value& v);

/// Numeric coercion; strings yield 0.0 (callers validate types beforehand).
double ValueToDouble(const Value& v);

/// Total order across values. Numeric values (int64/double) compare
/// numerically with each other; strings compare lexicographically; numerics
/// order before strings (mixed-type columns do not occur in practice).
bool ValueLess(const Value& a, const Value& b);
bool ValueEquals(const Value& a, const Value& b);

}  // namespace rma

#endif  // RMA_STORAGE_VALUE_H_
