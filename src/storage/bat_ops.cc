#include "storage/bat_ops.h"

#include "matrix/simd.h"

#include <algorithm>
#include <cstdlib>
#include <numeric>

#include "storage/sparse_bat.h"

namespace rma {
namespace bat_ops {

namespace {

#if defined(__GNUC__) || defined(__clang__)
#define RMA_PREFETCH_READ(addr) __builtin_prefetch((addr), 0, 1)
#define RMA_PREFETCH_WRITE(addr) __builtin_prefetch((addr), 1, 1)
#else
#define RMA_PREFETCH_READ(addr) ((void)0)
#define RMA_PREFETCH_WRITE(addr) ((void)0)
#endif

// Software-prefetch lookahead (in elements) for the strided gathers below.
// The permuted gather is the case that matters: its loads are data-dependent
// (v[p[i]]), so the hardware prefetcher sees a random stream and every miss
// stalls the 4x-unrolled loop. Requesting the line ~8 iterations (32 doubles
// = 4 unrolled groups) ahead gives an L2 hit time to complete before the
// loop arrives; much further and lines are evicted again on large gathers,
// much nearer and latency isn't covered. 32 measured best on the bench_batch
// gather scenarios on both the AVX2 and NEON boxes (16/64 within noise,
// both slower). RMA_PREFETCH_DISTANCE overrides for recalibration without a
// rebuild; 0 disables the prefetch entirely.
int64_t PrefetchDistance() {
  static const int64_t distance = [] {
    if (const char* env = std::getenv("RMA_PREFETCH_DISTANCE")) {
      return static_cast<int64_t>(std::strtol(env, nullptr, 10));
    }
    return static_cast<int64_t>(32);
  }();
  return distance;
}

int CompareRows(const std::vector<BatPtr>& keys, int64_t i, int64_t j) {
  for (const auto& k : keys) {
    const int c = k->Compare(i, *k, j);
    if (c != 0) return c;
  }
  return 0;
}

}  // namespace

std::vector<int64_t> ArgSort(const std::vector<BatPtr>& keys) {
  RMA_CHECK(!keys.empty());
  const int64_t n = keys[0]->size();
  std::vector<int64_t> perm(static_cast<size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  if (keys.size() == 1 && keys[0]->type() == DataType::kInt64) {
    // Fast path: single integer key.
    auto* b = dynamic_cast<const Int64Bat*>(keys[0].get());
    if (b != nullptr) {
      const auto& d = b->data();
      std::stable_sort(perm.begin(), perm.end(),
                       [&d](int64_t a, int64_t c) { return d[a] < d[c]; });
      return perm;
    }
  }
  if (keys.size() == 1 && keys[0]->type() == DataType::kDouble) {
    auto* b = dynamic_cast<const DoubleBat*>(keys[0].get());
    if (b != nullptr) {
      const auto& d = b->data();
      std::stable_sort(perm.begin(), perm.end(),
                       [&d](int64_t a, int64_t c) { return d[a] < d[c]; });
      return perm;
    }
  }
  std::stable_sort(perm.begin(), perm.end(), [&keys](int64_t a, int64_t b) {
    return CompareRows(keys, a, b) < 0;
  });
  return perm;
}

std::vector<int64_t> ArgSortUnique(const std::vector<BatPtr>& keys,
                                   bool* unique) {
  std::vector<int64_t> perm = ArgSort(keys);
  *unique = true;
  for (size_t i = 1; i < perm.size(); ++i) {
    if (CompareRows(keys, perm[i - 1], perm[i]) == 0) {
      *unique = false;
      break;
    }
  }
  return perm;
}

bool IsSorted(const std::vector<BatPtr>& keys) {
  if (keys.empty()) return true;
  const int64_t n = keys[0]->size();
  for (int64_t i = 1; i < n; ++i) {
    if (CompareRows(keys, i - 1, i) > 0) return false;
  }
  return true;
}

bool IsKey(const std::vector<BatPtr>& keys) {
  if (keys.empty()) return true;
  const int64_t n = keys[0]->size();
  // Flat open-addressing duplicate probe — one O(n) hash pass instead of a
  // sort (this backs the key validation on the sort-avoiding paths).
  size_t cap = 16;
  while (cap < static_cast<size_t>(n) * 2) cap <<= 1;
  const size_t mask = cap - 1;
  std::vector<int64_t> slot(cap, -1);
  std::vector<uint64_t> hashes(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const uint64_t h = HashRow(keys, i);
    hashes[static_cast<size_t>(i)] = h;
    size_t pos = static_cast<size_t>(h) & mask;
    while (slot[pos] >= 0) {
      if (hashes[static_cast<size_t>(slot[pos])] == h &&
          EqualRows(keys, slot[pos], keys, i)) {
        return false;
      }
      pos = (pos + 1) & mask;
    }
    slot[pos] = i;
  }
  return true;
}

uint64_t HashRow(const std::vector<BatPtr>& keys, int64_t i) {
  uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  for (const auto& k : keys) {
    const uint64_t v = k->Hash(i);
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

RowIndex BuildRowIndex(const std::vector<BatPtr>& keys) {
  RowIndex index;
  if (keys.empty()) return index;
  const int64_t n = keys[0]->size();
  index.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) index[HashRow(keys, i)].push_back(i);
  return index;
}

bool EqualRows(const std::vector<BatPtr>& a, int64_t i,
               const std::vector<BatPtr>& b, int64_t j) {
  RMA_DCHECK(a.size() == b.size());
  for (size_t c = 0; c < a.size(); ++c) {
    if (a[c]->Compare(i, *b[c], j) != 0) return false;
  }
  return true;
}

Result<std::vector<int64_t>> AlignByKey(const std::vector<BatPtr>& build,
                                        const std::vector<BatPtr>& probe) {
  RMA_CHECK(!build.empty() && build.size() == probe.size());
  const int64_t n = probe[0]->size();
  if (build[0]->size() != n) {
    return Status::Invalid("AlignByKey: relations differ in cardinality");
  }
  // Flat open-addressing table (linear probing, power-of-two capacity): a
  // single allocation instead of one bucket vector per distinct key, which
  // is what makes hash alignment cheaper than two multi-column sorts.
  size_t cap = 16;
  while (cap < static_cast<size_t>(n) * 2) cap <<= 1;
  const size_t mask = cap - 1;
  std::vector<int64_t> slot(cap, -1);
  std::vector<uint64_t> hashes(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const uint64_t h = HashRow(build, i);
    hashes[static_cast<size_t>(i)] = h;
    size_t pos = static_cast<size_t>(h) & mask;
    while (slot[pos] >= 0) {
      if (hashes[static_cast<size_t>(slot[pos])] == h &&
          EqualRows(build, slot[pos], build, i)) {
        // Duplicate build key: the order schema is not a key. The sorting
        // fallback re-detects this and reports the user-facing error.
        return Status::KeyError("AlignByKey: build keys are not unique");
      }
      pos = (pos + 1) & mask;
    }
    slot[pos] = i;
  }
  std::vector<int64_t> out(static_cast<size_t>(n), -1);
  std::vector<uint8_t> consumed(static_cast<size_t>(n), 0);
  for (int64_t i = 0; i < n; ++i) {
    const uint64_t h = HashRow(probe, i);
    size_t pos = static_cast<size_t>(h) & mask;
    int64_t match = -1;
    while (slot[pos] >= 0) {
      const int64_t cand = slot[pos];
      if (hashes[static_cast<size_t>(cand)] == h &&
          EqualRows(build, cand, probe, i)) {
        match = cand;
        break;
      }
      pos = (pos + 1) & mask;
    }
    if (match < 0) {
      return Status::KeyError("AlignByKey: probe row has no matching key");
    }
    if (consumed[static_cast<size_t>(match)] != 0) {
      return Status::KeyError("AlignByKey: probe keys are not unique");
    }
    consumed[static_cast<size_t>(match)] = 1;
    out[static_cast<size_t>(i)] = match;
  }
  // Every build row was consumed exactly once: the match is a bijection, so
  // both key sets are provably unique — callers need no separate key check.
  return out;
}

namespace {

const SparseDoubleBat* AsSparse(const BatPtr& b) {
  return dynamic_cast<const SparseDoubleBat*>(b.get());
}

std::vector<double> DenseOf(const BatPtr& b) {
  if (const auto* s = AsSparse(b)) return s->ToDense();
  return ToDoubleVector(*b);
}

}  // namespace

BatPtr AddColumns(const BatPtr& a, const BatPtr& b) {
  RMA_DCHECK(a->size() == b->size());
  const auto* sa = AsSparse(a);
  const auto* sb = AsSparse(b);
  if (sa != nullptr && sb != nullptr) return SparseAdd(*sa, *sb);
  std::vector<double> x = DenseOf(a);
  const std::vector<double> y = DenseOf(b);
  simd::Add(x.data(), y.data(), x.data(), static_cast<int64_t>(x.size()));
  return MakeDoubleBat(std::move(x));
}

BatPtr SubColumns(const BatPtr& a, const BatPtr& b) {
  RMA_DCHECK(a->size() == b->size());
  std::vector<double> x = DenseOf(a);
  const std::vector<double> y = DenseOf(b);
  simd::Sub(x.data(), y.data(), x.data(), static_cast<int64_t>(x.size()));
  return MakeDoubleBat(std::move(x));
}

BatPtr MulColumns(const BatPtr& a, const BatPtr& b) {
  RMA_DCHECK(a->size() == b->size());
  std::vector<double> x = DenseOf(a);
  const std::vector<double> y = DenseOf(b);
  simd::Mul(x.data(), y.data(), x.data(), static_cast<int64_t>(x.size()));
  return MakeDoubleBat(std::move(x));
}

std::vector<double> AddDense(const std::vector<double>& a,
                             const std::vector<double>& b) {
  RMA_DCHECK(a.size() == b.size());
  std::vector<double> out(a.size());
  simd::Add(a.data(), b.data(), out.data(), static_cast<int64_t>(a.size()));
  return out;
}

void CopyDenseToStrided(const double* src, int64_t n, double* dst,
                        int64_t stride) {
  if (stride == 1) {
    std::copy(src, src + n, dst);
    return;
  }
  // No vector scatter on AVX2/NEON: unroll 4x so the independent strided
  // stores overlap. Order-preserving, so bit-identical to the plain loop.
  // The strided destination touches a new cache line per store; a write
  // prefetch one lookahead group down hides the read-for-ownership latency.
  const int64_t dist = PrefetchDistance();
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    double* d = dst + i * stride;
    if (dist > 0 && i + dist < n) {
      RMA_PREFETCH_WRITE(dst + (i + dist) * stride);
    }
    d[0] = src[i];
    d[stride] = src[i + 1];
    d[2 * stride] = src[i + 2];
    d[3 * stride] = src[i + 3];
  }
  for (; i < n; ++i) dst[i * stride] = src[i];
}

void GatherColumnToStrided(const Bat& col, const std::vector<int64_t>& perm,
                           double* dst, int64_t stride) {
  const int64_t n = perm.empty() ? col.size()
                                 : static_cast<int64_t>(perm.size());
  if (perm.empty()) {
    if (const double* v = col.ContiguousDoubleData()) {
      CopyDenseToStrided(v, n, dst, stride);
      return;
    }
    for (int64_t i = 0; i < n; ++i) dst[i * stride] = col.GetDouble(i);
    return;
  }
  if (const double* v = col.ContiguousDoubleData()) {
    // Data-dependent loads (v[p[i]]) defeat the hardware prefetcher; request
    // the lines a fixed distance ahead through the (sequentially readable)
    // permutation. Prefetching is a hint — results are bit-identical.
    const int64_t* p = perm.data();
    const int64_t dist = PrefetchDistance();
    int64_t i = 0;
    for (; i + 4 <= n; i += 4) {
      double* out = dst + i * stride;
      if (dist > 0 && i + dist + 3 < n) {
        RMA_PREFETCH_READ(v + p[i + dist]);
        RMA_PREFETCH_READ(v + p[i + dist + 1]);
        RMA_PREFETCH_READ(v + p[i + dist + 2]);
        RMA_PREFETCH_READ(v + p[i + dist + 3]);
      }
      out[0] = v[p[i]];
      out[stride] = v[p[i + 1]];
      out[2 * stride] = v[p[i + 2]];
      out[3 * stride] = v[p[i + 3]];
    }
    for (; i < n; ++i) dst[i * stride] = v[p[i]];
    return;
  }
  for (int64_t i = 0; i < n; ++i) {
    dst[i * stride] = col.GetDouble(perm[static_cast<size_t>(i)]);
  }
}

namespace {

// Tile shape for the row-major <-> columnar transposes: 64 rows x 16 columns
// keeps the strided side of a tile within ~8KB, so its cache lines are
// finished while still resident instead of being swept once per column.
constexpr int64_t kTileRows = 64;
constexpr int64_t kTileCols = 16;

}  // namespace

void PackColumnsRowMajor(const double* const* cols, int64_t k,
                         const int64_t* perm, int64_t n, double* dst) {
  if (k == 1) {
    if (perm == nullptr) {
      std::copy(cols[0], cols[0] + n, dst);
    } else {
      const double* v = cols[0];
      for (int64_t i = 0; i < n; ++i) dst[i] = v[perm[i]];
    }
    return;
  }
  for (int64_t i0 = 0; i0 < n; i0 += kTileRows) {
    const int64_t i1 = std::min(n, i0 + kTileRows);
    for (int64_t j0 = 0; j0 < k; j0 += kTileCols) {
      const int64_t j1 = std::min(k, j0 + kTileCols);
      int64_t j = j0;
      if (perm == nullptr) {
        // 4-column groups go through the in-register 4x4 transpose, which
        // turns the strided stores into full-width vector stores.
        for (; j + 4 <= j1; j += 4) {
          simd::Pack4(cols[j] + i0, cols[j + 1] + i0, cols[j + 2] + i0,
                      cols[j + 3] + i0, dst + i0 * k + j, k, i1 - i0);
        }
      }
      for (; j < j1; ++j) {
        const double* v = cols[j];
        double* d = dst + i0 * k + j;
        if (perm == nullptr) {
          for (int64_t i = i0; i < i1; ++i, d += k) *d = v[i];
        } else {
          for (int64_t i = i0; i < i1; ++i, d += k) *d = v[perm[i]];
        }
      }
    }
  }
}

void UnpackRowMajorToColumns(const double* src, int64_t n, int64_t k,
                             double* const* cols) {
  if (k == 1) {
    std::copy(src, src + n, cols[0]);
    return;
  }
  for (int64_t i0 = 0; i0 < n; i0 += kTileRows) {
    const int64_t i1 = std::min(n, i0 + kTileRows);
    for (int64_t j0 = 0; j0 < k; j0 += kTileCols) {
      const int64_t j1 = std::min(k, j0 + kTileCols);
      int64_t j = j0;
      for (; j + 4 <= j1; j += 4) {
        simd::Unpack4(src + i0 * k + j, k, i1 - i0, cols[j] + i0,
                      cols[j + 1] + i0, cols[j + 2] + i0, cols[j + 3] + i0);
      }
      for (; j < j1; ++j) {
        double* v = cols[j];
        const double* s = src + i0 * k + j;
        for (int64_t i = i0; i < i1; ++i, s += k) v[i] = *s;
      }
    }
  }
}

void Axpy(double alpha, const std::vector<double>& x, std::vector<double>* y) {
  RMA_DCHECK(x.size() == y->size());
  simd::Axpy(alpha, x.data(), y->data(), static_cast<int64_t>(x.size()));
}

void Scale(double alpha, std::vector<double>* x) {
  simd::Scale(alpha, x->data(), static_cast<int64_t>(x->size()));
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  RMA_DCHECK(a.size() == b.size());
  return simd::Dot(a.data(), b.data(), static_cast<int64_t>(a.size()));
}

double Sum(const std::vector<double>& a) {
  return simd::Sum(a.data(), static_cast<int64_t>(a.size()));
}

std::vector<int64_t> SelectIndices(
    const Bat& bat, const std::function<bool(const Value&)>& pred) {
  std::vector<int64_t> out;
  const int64_t n = bat.size();
  for (int64_t i = 0; i < n; ++i) {
    if (pred(bat.GetValue(i))) out.push_back(i);
  }
  return out;
}

namespace {

template <typename T, typename Cmp>
void ScanTyped(const std::vector<T>& data, Cmp cmp, double threshold,
               std::vector<int64_t>* out) {
  for (size_t i = 0; i < data.size(); ++i) {
    if (cmp(static_cast<double>(data[i]), threshold)) {
      out->push_back(static_cast<int64_t>(i));
    }
  }
}

template <typename T>
void ScanOp(const std::vector<T>& data, const std::string& op, double t,
            std::vector<int64_t>* out) {
  if (op == "<") {
    ScanTyped(data, std::less<double>(), t, out);
  } else if (op == "<=") {
    ScanTyped(data, std::less_equal<double>(), t, out);
  } else if (op == ">") {
    ScanTyped(data, std::greater<double>(), t, out);
  } else if (op == ">=") {
    ScanTyped(data, std::greater_equal<double>(), t, out);
  } else if (op == "==") {
    ScanTyped(data, std::equal_to<double>(), t, out);
  } else if (op == "!=") {
    ScanTyped(data, std::not_equal_to<double>(), t, out);
  } else {
    RMA_CHECK(false && "unknown comparison op");
  }
}

}  // namespace

std::vector<int64_t> SelectNumeric(const Bat& bat, const std::string& op,
                                   double threshold) {
  std::vector<int64_t> out;
  if (bat.type() == DataType::kDouble) {
    if (const auto* d = dynamic_cast<const DoubleBat*>(&bat)) {
      ScanOp(d->data(), op, threshold, &out);
      return out;
    }
  }
  if (bat.type() == DataType::kInt64) {
    if (const auto* d = dynamic_cast<const Int64Bat*>(&bat)) {
      ScanOp(d->data(), op, threshold, &out);
      return out;
    }
  }
  // Generic fallback (sparse columns, ...).
  const int64_t n = bat.size();
  for (int64_t i = 0; i < n; ++i) {
    const double v = bat.GetDouble(i);
    bool keep = false;
    if (op == "<") keep = v < threshold;
    else if (op == "<=") keep = v <= threshold;
    else if (op == ">") keep = v > threshold;
    else if (op == ">=") keep = v >= threshold;
    else if (op == "==") keep = v == threshold;
    else if (op == "!=") keep = v != threshold;
    if (keep) out.push_back(i);
  }
  return out;
}

}  // namespace bat_ops
}  // namespace rma
