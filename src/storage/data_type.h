#ifndef RMA_STORAGE_DATA_TYPE_H_
#define RMA_STORAGE_DATA_TYPE_H_

#include <string>

namespace rma {

/// Attribute/value types supported by the column store.
///
/// The paper's application parts are numeric (materialized as double for
/// matrix operations); order parts may additionally hold strings (user names,
/// timestamps rendered as text, conference names, ...).
enum class DataType : int {
  kInt64 = 0,
  kDouble = 1,
  kString = 2,
};

/// Human-readable type name ("INT", "DOUBLE", "STRING").
const char* DataTypeName(DataType t);

/// True for kInt64/kDouble — values usable in an application part.
inline bool IsNumeric(DataType t) {
  return t == DataType::kInt64 || t == DataType::kDouble;
}

}  // namespace rma

#endif  // RMA_STORAGE_DATA_TYPE_H_
