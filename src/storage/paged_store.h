#ifndef RMA_STORAGE_PAGED_STORE_H_
#define RMA_STORAGE_PAGED_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/pager.h"
#include "storage/relation.h"
#include "util/mutex.h"
#include "util/result.h"
#include "util/status.h"

namespace rma {

struct PagedStoreOptions {
  /// Buffer-pool budget shared by every column of the store.
  int64_t pool_bytes = 256ll << 20;
  /// Page size for newly created column files (existing files keep theirs).
  int64_t page_bytes = Pager::kDefaultPageBytes;
  /// Test/tooling hook: sleep this long between column writes in SaveTable
  /// so crash-recovery harnesses (scripts/storage_smoke.sh) get a
  /// deterministic SIGKILL window mid-table. 0 in production.
  int64_t sleep_ms_between_columns = 0;
};

/// Durable table storage under one data directory.
///
/// Layout:
///   <dir>/manifest      versioned text catalog, trailing whole-file
///                       checksum line; always replaced atomically
///                       (manifest.tmp + fsync + rename + dir fsync)
///   <dir>/c<N>.col      one page file per column (storage/pager.h)
///
/// The manifest is the commit record: SaveTable writes and syncs every
/// column file of the new table *before* swinging the manifest, so a crash
/// at any point leaves either the old catalog (new files are orphans,
/// garbage-collected on the next Open) or the new one (files complete and
/// synced). Open() rebuilds the catalog from the manifest, verifying each
/// column file's header and length and discarding — with a warning — any
/// table whose files are missing, truncated, or corrupt; numeric columns
/// are mapped lazily as PagedBats (page checksums verify on pin), string
/// columns load eagerly.
///
/// Thread safety: `mu_` serializes catalog mutations and manifest writes;
/// reads of recovered/saved relations are lock-free (immutable Relations,
/// internally synchronized pool/pagers). Database calls SaveTable/DropTable
/// under its own catalog lock, so store-level contention is incidental.
class PagedStore {
 public:
  static Result<std::shared_ptr<PagedStore>> Open(
      const std::string& dir, const PagedStoreOptions& opts = {});

  const std::string& dir() const { return dir_; }
  const std::shared_ptr<BufferPool>& pool() const { return pool_; }

  /// Tables recovered from the manifest by Open, in manifest order:
  /// (display name, relation with paged numeric columns).
  const std::vector<std::pair<std::string, Relation>>& recovered() const {
    return recovered_;
  }

  /// Persists `rel` as table `name` (replacing any previous version) and
  /// returns the store-backed twin: same schema/rows/name, numeric columns
  /// as PagedBats over the new files. The returned relation — not the
  /// malloc-backed input — is what belongs in the catalog, so reads fault
  /// through the buffer pool.
  Result<Relation> SaveTable(const std::string& name, const Relation& rel);

  /// Removes `name` from the manifest and unlinks its files. Relations
  /// already handed out keep reading (their pagers hold open descriptors).
  Status DropTable(const std::string& name);

 private:
  struct ColumnMeta {
    std::string attr;
    DataType type = DataType::kDouble;
    std::string file;  // basename within dir_
    uint64_t first_page = 0;
    uint64_t n_pages = 0;
    int64_t bytes = 0;
  };
  struct TableMeta {
    std::string display_name;
    int64_t rows = 0;
    std::vector<ColumnMeta> cols;
  };

  PagedStore(std::string dir, const PagedStoreOptions& opts);

  Status WriteManifestLocked() RMA_REQUIRES(mu_);
  std::string ManifestTextLocked() const RMA_REQUIRES(mu_);
  Status LoadManifestLocked(const std::string& text) RMA_REQUIRES(mu_);
  /// Builds the catalog Relation for `meta`, opening pagers; any failure
  /// means the table is unreadable (discard at Open, error at Save-return).
  Result<Relation> LoadTable(const TableMeta& meta);
  Result<ColumnMeta> WriteColumnLocked(const std::string& attr, const Bat& col)
      RMA_REQUIRES(mu_);
  void RemoveFilesOf(const TableMeta& meta);
  /// Unlinks c*.col files not referenced by the catalog (post-crash
  /// orphans) and any leftover manifest.tmp.
  void CollectGarbageLocked() RMA_REQUIRES(mu_);

  const std::string dir_;
  const PagedStoreOptions opts_;
  std::shared_ptr<BufferPool> pool_;
  std::vector<std::pair<std::string, Relation>> recovered_;

  Mutex mu_;
  /// Keyed by lower-cased table name (matching sql::Database's catalog).
  std::map<std::string, TableMeta> tables_ RMA_GUARDED_BY(mu_);
  uint64_t next_file_id_ RMA_GUARDED_BY(mu_) = 1;
};

}  // namespace rma

#endif  // RMA_STORAGE_PAGED_STORE_H_
