#include "storage/pager.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <vector>

namespace rma {

namespace {

constexpr uint64_t kFormatVersion = 1;
constexpr size_t kHeaderFields = 4;  // magic, version, page_bytes, page_count
constexpr size_t kHeaderBytes = (kHeaderFields + 1) * sizeof(uint64_t);

std::string Errno(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

Status FullPread(int fd, void* buf, size_t n, int64_t off,
                 const std::string& path) {
  char* p = static_cast<char*>(buf);
  while (n > 0) {
    const ssize_t r = ::pread(fd, p, n, static_cast<off_t>(off));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(Errno("read", path));
    }
    if (r == 0) {
      return Status::IoError("read " + path + ": unexpected end of file");
    }
    p += r;
    n -= static_cast<size_t>(r);
    off += r;
  }
  return Status::OK();
}

Status FullPwrite(int fd, const void* buf, size_t n, int64_t off,
                  const std::string& path) {
  const char* p = static_cast<const char*>(buf);
  while (n > 0) {
    const ssize_t r = ::pwrite(fd, p, n, static_cast<off_t>(off));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(Errno("write", path));
    }
    p += r;
    n -= static_cast<size_t>(r);
    off += r;
  }
  return Status::OK();
}

uint64_t NextPagerId() {
  static std::atomic<uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

uint64_t StorageChecksum(const void* data, size_t n, uint64_t seed) {
  // FNV-1a 64, offset basis xored with the seed so independent streams
  // (header vs. pages vs. manifest) cannot collide trivially.
  uint64_t h = 0xcbf29ce484222325ull ^ seed;
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

Pager::Pager(std::string path, int fd, int64_t page_bytes, uint64_t page_count)
    : path_(std::move(path)),
      fd_(fd),
      page_bytes_(page_bytes),
      id_(NextPagerId()),
      page_count_(page_count) {}

Pager::~Pager() { ::close(fd_); }

uint64_t Pager::page_count() const {
  MutexLock lock(mu_);
  return page_count_;
}

Result<std::shared_ptr<Pager>> Pager::Create(const std::string& path,
                                             int64_t page_bytes) {
  if (page_bytes < kMinPageBytes) {
    return Status::Invalid("page size " + std::to_string(page_bytes) +
                           " below the minimum of " +
                           std::to_string(kMinPageBytes));
  }
  const int fd =
      ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return Status::IoError(Errno("create", path));
  std::shared_ptr<Pager> pager(new Pager(path, fd, page_bytes, 0));
  {
    MutexLock lock(pager->mu_);
    RMA_RETURN_NOT_OK(pager->WriteHeaderLocked());
  }
  return pager;
}

Result<std::shared_ptr<Pager>> Pager::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CLOEXEC);
  if (fd < 0) return Status::IoError(Errno("open", path));
  uint64_t header[kHeaderFields + 1];
  Status st = FullPread(fd, header, kHeaderBytes, 0, path);
  if (!st.ok()) {
    ::close(fd);
    return st;
  }
  const uint64_t sum =
      StorageChecksum(header, kHeaderFields * sizeof(uint64_t));
  if (header[kHeaderFields] != sum) {
    ::close(fd);
    return Status::IoError("open " + path + ": header checksum mismatch");
  }
  if (header[0] != kMagic) {
    ::close(fd);
    return Status::IoError("open " + path + ": not an rma page file");
  }
  if (header[1] != kFormatVersion) {
    ::close(fd);
    return Status::IoError("open " + path + ": unsupported format version " +
                           std::to_string(header[1]));
  }
  const auto page_bytes = static_cast<int64_t>(header[2]);
  if (page_bytes < kMinPageBytes) {
    ::close(fd);
    return Status::IoError("open " + path + ": corrupt page size");
  }
  // Every page the header commits must exist in full: a SIGKILL between
  // data writes and Sync leaves the previous header (fine), but external
  // truncation would otherwise only surface on first read.
  struct stat file_info {};
  if (::fstat(fd, &file_info) != 0) {
    const Status es = Status::IoError(Errno("stat", path));
    ::close(fd);
    return es;
  }
  if (file_info.st_size < static_cast<off_t>((header[3] + 1) *
                                      static_cast<uint64_t>(page_bytes))) {
    ::close(fd);
    return Status::IoError("open " + path +
                           ": file shorter than committed page count "
                           "(truncated write)");
  }
  return std::shared_ptr<Pager>(new Pager(path, fd, page_bytes, header[3]));
}

Status Pager::WriteHeaderLocked() {
  uint64_t header[kHeaderFields + 1];
  header[0] = kMagic;
  header[1] = kFormatVersion;
  header[2] = static_cast<uint64_t>(page_bytes_);
  header[3] = page_count_;
  header[kHeaderFields] =
      StorageChecksum(header, kHeaderFields * sizeof(uint64_t));
  return FullPwrite(fd_, header, kHeaderBytes, 0, path_);
}

Result<uint64_t> Pager::AllocateExtent(uint64_t n_pages) {
  if (n_pages == 0) return Status::Invalid("empty extent");
  MutexLock lock(mu_);
  const uint64_t first = page_count_ + 1;
  page_count_ += n_pages;
  return first;
}

Status Pager::ReadPage(uint64_t page, void* payload) const {
  {
    MutexLock lock(mu_);
    if (page == 0 || page > page_count_) {
      return Status::OutOfRange("read " + path_ + ": page " +
                                std::to_string(page) + " of " +
                                std::to_string(page_count_));
    }
  }
  std::vector<char> buf(static_cast<size_t>(page_bytes_));
  RMA_RETURN_NOT_OK(FullPread(fd_, buf.data(), buf.size(),
                              static_cast<int64_t>(page) * page_bytes_,
                              path_));
  uint64_t stored_sum = 0;
  uint64_t stored_id = 0;
  std::memcpy(&stored_sum, buf.data(), sizeof(uint64_t));
  std::memcpy(&stored_id, buf.data() + sizeof(uint64_t), sizeof(uint64_t));
  const uint64_t sum = StorageChecksum(buf.data() + sizeof(uint64_t),
                                       buf.size() - sizeof(uint64_t));
  if (stored_sum != sum || stored_id != page) {
    return Status::IoError("read " + path_ + ": page " + std::to_string(page) +
                           " checksum mismatch (torn or misdirected write)");
  }
  std::memcpy(payload, buf.data() + kPageHeaderBytes,
              static_cast<size_t>(payload_bytes()));
  return Status::OK();
}

Status Pager::WritePage(uint64_t page, const void* payload) {
  {
    MutexLock lock(mu_);
    if (page == 0 || page > page_count_) {
      return Status::OutOfRange("write " + path_ + ": page " +
                                std::to_string(page) + " of " +
                                std::to_string(page_count_));
    }
  }
  std::vector<char> buf(static_cast<size_t>(page_bytes_));
  const uint64_t id = page;
  std::memcpy(buf.data() + sizeof(uint64_t), &id, sizeof(uint64_t));
  std::memcpy(buf.data() + kPageHeaderBytes, payload,
              static_cast<size_t>(payload_bytes()));
  const uint64_t sum = StorageChecksum(buf.data() + sizeof(uint64_t),
                                       buf.size() - sizeof(uint64_t));
  std::memcpy(buf.data(), &sum, sizeof(uint64_t));
  return FullPwrite(fd_, buf.data(), buf.size(),
                    static_cast<int64_t>(page) * page_bytes_, path_);
}

Status Pager::Sync() {
  // Data first, then the header whose page count commits the allocation:
  // a crash between the two leaves the old header describing only pages
  // that were fully written and synced.
  if (::fdatasync(fd_) != 0) return Status::IoError(Errno("fsync", path_));
  MutexLock lock(mu_);
  RMA_RETURN_NOT_OK(WriteHeaderLocked());
  if (::fsync(fd_) != 0) return Status::IoError(Errno("fsync", path_));
  return Status::OK();
}

}  // namespace rma
