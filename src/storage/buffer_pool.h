#ifndef RMA_STORAGE_BUFFER_POOL_H_
#define RMA_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <utility>

#include "storage/pager.h"
#include "util/mutex.h"
#include "util/result.h"
#include "util/status.h"

namespace rma {

/// Counters surfaced through ExecContext / EXPLAIN ANALYZE. Snapshot
/// semantics: callers diff two stats() calls to attribute activity to one
/// statement.
struct BufferPoolStats {
  int64_t hits = 0;        ///< Pin found the extent resident.
  int64_t misses = 0;      ///< Pin had to read the extent from its pager.
  int64_t evictions = 0;   ///< Frames dropped to make room.
  int64_t writebacks = 0;  ///< Dirty frames written back (evict or flush).
  int64_t resident_bytes = 0;  ///< Current bytes held in frames.
  int64_t overcommits = 0;     ///< Pins granted past capacity (all pinned).
};

class BufferPool;

/// RAII pin over one resident column extent. While valid(), data() points at
/// the extent's contiguous payload and the frame cannot be evicted.
/// Movable, not copyable; destruction (or Release) unpins.
class PinnedExtent {
 public:
  PinnedExtent() = default;
  ~PinnedExtent();
  PinnedExtent(PinnedExtent&& other) noexcept;
  PinnedExtent& operator=(PinnedExtent&& other) noexcept;
  PinnedExtent(const PinnedExtent&) = delete;
  PinnedExtent& operator=(const PinnedExtent&) = delete;

  bool valid() const { return frame_ != nullptr; }
  /// Contiguous payload of the pinned extent (logical bytes, then padding
  /// up to whole pages).
  const char* data() const;
  /// Writable view for bulk-load write-through; pair with MarkDirty().
  char* mutable_data() const;
  /// Logical payload bytes (the column tail, excluding page padding).
  int64_t bytes() const;
  /// Flags the frame for writeback on eviction/flush.
  void MarkDirty();
  void Release();

 private:
  friend class BufferPool;
  PinnedExtent(BufferPool* pool, void* frame) : pool_(pool), frame_(frame) {}

  BufferPool* pool_ = nullptr;
  void* frame_ = nullptr;  // BufferPool::Frame*, opaque to callers
};

/// Byte-budgeted cache of column extents with LRU eviction.
///
/// The unit of residency is a whole column extent, not a single page:
/// pinning a column yields one contiguous buffer (MonetDB loads whole BAT
/// heaps the same way), which is what keeps ContiguousDoubleData() and the
/// SIMD gather/pack fast paths valid over paged columns. Pages remain the
/// I/O and checksum unit underneath.
///
/// Eviction is strict LRU over unpinned frames; pinned frames are never
/// evicted. When every frame is pinned and the budget is exhausted the pool
/// overcommits (and counts it) rather than failing the query — the cap is a
/// working-set target, not a hard allocation limit.
///
/// Thread safety: one mutex guards the frame table, the LRU list and the
/// stats; miss I/O currently runs under it (single-threaded disk, documented
/// simplification — the kernels the pool feeds dominate runtime, and the
/// fix, a per-frame "loading" latch, slots in behind the same interface).
class BufferPool {
 public:
  explicit BufferPool(int64_t capacity_bytes);
  ~BufferPool();
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins pages [first_page, first_page + n_pages) of `pager` as one frame,
  /// reading + checksum-verifying them on a miss. `bytes` is the logical
  /// payload size (<= n_pages * payload). The frame keeps the pager alive.
  Result<PinnedExtent> Pin(const std::shared_ptr<Pager>& pager,
                           uint64_t first_page, uint64_t n_pages,
                           int64_t bytes);

  /// Allocates a resident, dirty, pinned frame for a freshly allocated
  /// extent without reading it (bulk-load write-through). Contents are
  /// undefined until the caller fills mutable_data().
  Result<PinnedExtent> Create(const std::shared_ptr<Pager>& pager,
                              uint64_t first_page, uint64_t n_pages,
                              int64_t bytes);

  /// Writes back every dirty frame belonging to `pager` (pinned or not),
  /// then pager->Sync(). The bulk-load commit point.
  Status Flush(const std::shared_ptr<Pager>& pager);

  /// Drops every unpinned frame belonging to pager `pager_id`, discarding
  /// dirty data (used on DropTable; still-pinned frames of concurrent
  /// readers stay resident and age out through the LRU).
  void Forget(uint64_t pager_id);

  BufferPoolStats stats() const;
  int64_t capacity_bytes() const { return capacity_bytes_; }

 private:
  friend class PinnedExtent;
  struct Frame;
  using FrameKey = std::pair<uint64_t, uint64_t>;  // (pager id, first page)

  void Unpin(Frame* f);
  void MarkDirty(Frame* f);
  /// Evicts LRU frames until `need` more bytes fit (or nothing is evictable).
  Status EvictForLocked(int64_t need) RMA_REQUIRES(mu_);
  Status WritebackLocked(Frame* f) RMA_REQUIRES(mu_);

  const int64_t capacity_bytes_;
  mutable Mutex mu_;
  std::map<FrameKey, std::unique_ptr<Frame>> frames_ RMA_GUARDED_BY(mu_);
  /// Unpinned frames only, most-recently-used at the back.
  std::list<Frame*> lru_ RMA_GUARDED_BY(mu_);
  BufferPoolStats stats_ RMA_GUARDED_BY(mu_);
};

}  // namespace rma

#endif  // RMA_STORAGE_BUFFER_POOL_H_
