#ifndef RMA_STORAGE_PAGED_BAT_H_
#define RMA_STORAGE_PAGED_BAT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/bat.h"
#include "storage/buffer_pool.h"
#include "storage/pager.h"
#include "storage/relation.h"
#include "util/mutex.h"

namespace rma {

/// An out-of-core numeric column: the tail lives in one extent of a page
/// file and is resident only while pinned through the buffer pool.
///
/// The residency contract mirrors MonetDB's BAT heaps: `PinData` faults the
/// whole extent into one contiguous frame, `ContiguousDoubleData` returns
/// that frame only between Pin/Unpin (so the SIMD gather/pack fast paths
/// work unchanged on pinned paged columns), and `StableData() == false`
/// tells slice views and caches that the pointer dies with the pin.
///
/// Per-element virtual accessors pin transiently, so row-at-a-time layers
/// remain correct without brackets — but the intended use is the staged
/// executor's relation-level bracket (core/dispatch.cc) and bind-time
/// materialization in the SQL layer, where pin failures (torn pages) can
/// propagate as Status instead of being swallowed by a void accessor.
///
/// Planner-visible properties (ByteSize, Hash, Compare, GetString) match
/// TypedBat<T> exactly: a paged column must plan and execute bit-identically
/// to its malloc twin.
template <typename T>
class PagedBat final : public Bat {
  static_assert(std::is_same_v<T, double> || std::is_same_v<T, int64_t>,
                "paged columns hold fixed-width numeric tails");

 public:
  PagedBat(std::shared_ptr<Pager> pager, std::shared_ptr<BufferPool> pool,
           uint64_t first_page, uint64_t n_pages, int64_t rows);
  ~PagedBat() override;

  DataType type() const override;
  int64_t size() const override { return rows_; }

  Status PinData() const override;
  void UnpinData() const override;
  bool StableData() const override { return false; }
  const double* ContiguousDoubleData() const override;

  Value GetValue(int64_t i) const override { return Value(ValueAt(i)); }
  double GetDouble(int64_t i) const override {
    return static_cast<double>(ValueAt(i));
  }
  std::string GetString(int64_t i) const override;
  BatPtr Take(const std::vector<int64_t>& indices) const override;
  int Compare(int64_t i, const Bat& other, int64_t j) const override;
  uint64_t Hash(int64_t i) const override {
    return std::hash<T>{}(ValueAt(i));
  }
  int64_t ByteSize() const override {
    return rows_ * static_cast<int64_t>(sizeof(T));
  }

 private:
  /// Reads one element, pinning transiently when no bracket pin is active.
  /// I/O failure here (corrupt page outside any Status-bearing seam) warns
  /// once and yields 0 — the seams (PinColumns / MaterializeUnstable)
  /// exist precisely so real queries fail loudly before reaching this.
  T ValueAt(int64_t i) const;

  const T* ValuesLocked() const RMA_REQUIRES(mu_) {
    return reinterpret_cast<const T*>(extent_.data());
  }

  const std::shared_ptr<Pager> pager_;
  const std::shared_ptr<BufferPool> pool_;
  const uint64_t first_page_;
  const uint64_t n_pages_;
  const int64_t rows_;

  mutable Mutex mu_;
  mutable PinnedExtent extent_ RMA_GUARDED_BY(mu_);
  mutable int64_t pins_ RMA_GUARDED_BY(mu_) = 0;
};

using PagedDoubleBat = PagedBat<double>;
using PagedInt64Bat = PagedBat<int64_t>;

/// RAII residency bracket over whole relations: pins every column of every
/// relation passed to Pin, unpinning all of them on destruction. The staged
/// executor wraps each operation's arguments in one of these (gather in
/// core/prepare.cc through scatter in core/assemble.cc run inside the
/// bracket), so paged columns are contiguous and fault-free for the whole
/// stage chain and pin failures surface as Status at the operation boundary.
class PinnedRelations {
 public:
  PinnedRelations() = default;
  ~PinnedRelations();
  PinnedRelations(const PinnedRelations&) = delete;
  PinnedRelations& operator=(const PinnedRelations&) = delete;

  Status Pin(const Relation& r);

 private:
  std::vector<BatPtr> pinned_;
};

/// Returns `r` unchanged when every column's data pointers are stable
/// (malloc-backed); otherwise a malloc-backed copy of the unstable columns
/// (same schema and name, fresh identity). The SQL layer calls this at
/// table-bind time so the row-at-a-time relational operators and streamed
/// results only ever touch resident data, and torn-page checksum failures
/// become statement errors instead of accessor-level surprises.
Result<Relation> MaterializeUnstable(const Relation& r);

}  // namespace rma

#endif  // RMA_STORAGE_PAGED_BAT_H_
