#include "storage/value.h"

#include "util/string_util.h"

namespace rma {

DataType ValueType(const Value& v) {
  switch (v.index()) {
    case 0:
      return DataType::kInt64;
    case 1:
      return DataType::kDouble;
    default:
      return DataType::kString;
  }
}

std::string ValueToString(const Value& v) {
  switch (v.index()) {
    case 0:
      return std::to_string(std::get<int64_t>(v));
    case 1:
      return FormatDouble(std::get<double>(v));
    default:
      return std::get<std::string>(v);
  }
}

double ValueToDouble(const Value& v) {
  switch (v.index()) {
    case 0:
      return static_cast<double>(std::get<int64_t>(v));
    case 1:
      return std::get<double>(v);
    default:
      return 0.0;
  }
}

namespace {

bool IsNumericValue(const Value& v) { return v.index() < 2; }

}  // namespace

bool ValueLess(const Value& a, const Value& b) {
  const bool an = IsNumericValue(a);
  const bool bn = IsNumericValue(b);
  if (an && bn) return ValueToDouble(a) < ValueToDouble(b);
  if (an != bn) return an;  // numerics order before strings
  return std::get<std::string>(a) < std::get<std::string>(b);
}

bool ValueEquals(const Value& a, const Value& b) {
  const bool an = IsNumericValue(a);
  const bool bn = IsNumericValue(b);
  if (an && bn) return ValueToDouble(a) == ValueToDouble(b);
  if (an != bn) return false;
  return std::get<std::string>(a) == std::get<std::string>(b);
}

}  // namespace rma
