#include "storage/relation.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <list>
#include <map>
#include <sstream>
#include <tuple>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace rma {

namespace {

/// Slice-identity memo (see Relation::SliceIdentity). File-scope so the
/// guarded_by relation is analysis-visible; the containers are leaked on
/// purpose (identity tokens may be minted during static teardown of cached
/// plans).
///
/// The memo is LRU-bounded: long-running processes slice ever-fresh
/// relations (every statement result has a new identity), so an unbounded
/// map would grow with every distinct shard shape ever executed. Evicting
/// an entry is safe — the next slice of that range mints a fresh token,
/// which can only cause a prepared-cache miss, never aliasing (tokens are
/// never reused).
using SliceKey = std::tuple<uint64_t, int64_t, int64_t>;

struct SliceMemoEntry {
  uint64_t token = 0;
  std::list<SliceKey>::iterator lru_it;
};

constexpr size_t kSliceMemoDefaultCapacity = 4096;

Mutex g_slice_memo_mu;
size_t g_slice_memo_capacity RMA_GUARDED_BY(g_slice_memo_mu) =
    kSliceMemoDefaultCapacity;
std::map<SliceKey, SliceMemoEntry>& SliceMemo()
    RMA_REQUIRES(g_slice_memo_mu) {
  static auto* memo = new std::map<SliceKey, SliceMemoEntry>();
  return *memo;
}
/// LRU order over the memo's keys: least recently used at the front.
std::list<SliceKey>& SliceMemoLru() RMA_REQUIRES(g_slice_memo_mu) {
  static auto* lru = new std::list<SliceKey>();
  return *lru;
}

}  // namespace

size_t SliceIdentityMemoSize() {
  MutexLock lock(g_slice_memo_mu);
  return SliceMemo().size();
}

size_t SetSliceIdentityMemoCapacity(size_t capacity) {
  MutexLock lock(g_slice_memo_mu);
  const size_t previous = g_slice_memo_capacity;
  g_slice_memo_capacity = std::max<size_t>(1, capacity);
  std::map<SliceKey, SliceMemoEntry>& tokens = SliceMemo();
  std::list<SliceKey>& lru = SliceMemoLru();
  while (tokens.size() > g_slice_memo_capacity) {
    tokens.erase(lru.front());
    lru.pop_front();
  }
  return previous;
}

uint64_t Relation::NextIdentity() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

Result<Relation> Relation::Make(Schema schema, std::vector<BatPtr> columns,
                                std::string name) {
  if (static_cast<size_t>(schema.num_attributes()) != columns.size()) {
    return Status::Invalid("schema/column count mismatch");
  }
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == nullptr) return Status::Invalid("null column");
    if (columns[i]->size() != columns[0]->size()) {
      return Status::Invalid("columns differ in length");
    }
    const DataType ct = columns[i]->type();
    const DataType st = schema.attribute(static_cast<int>(i)).type;
    if (ct != st) {
      return Status::TypeError("column '" +
                               schema.attribute(static_cast<int>(i)).name +
                               "' type mismatch");
    }
  }
  return Relation(std::move(schema), std::move(columns), std::move(name));
}

Result<BatPtr> Relation::ColumnByName(const std::string& name) const {
  RMA_ASSIGN_OR_RETURN(int idx, schema_.IndexOf(name));
  return columns_[static_cast<size_t>(idx)];
}

uint64_t Relation::SliceIdentity(uint64_t parent, int64_t begin,
                                 int64_t count) {
  // Tokens for slices must be (a) distinct from every whole-relation token and
  // (b) stable across repeated slicing, or the prepared-argument cache would
  // either alias a shard with its parent or miss on every run. Memoize fresh
  // NextIdentity tokens per (parent, range) in the LRU-bounded memo: within
  // the bound, repeated slicing is stable; past it, the least recently
  // sliced range re-mints (a cache miss, not a correctness issue).
  MutexLock lock(g_slice_memo_mu);
  std::map<SliceKey, SliceMemoEntry>& tokens = SliceMemo();
  std::list<SliceKey>& lru = SliceMemoLru();
  const SliceKey key{parent, begin, count};
  auto [it, inserted] = tokens.try_emplace(key);
  if (inserted) {
    it->second.token = NextIdentity();
    it->second.lru_it = lru.insert(lru.end(), key);
    while (tokens.size() > g_slice_memo_capacity) {
      tokens.erase(lru.front());
      lru.pop_front();
    }
  } else {
    lru.splice(lru.end(), lru, it->second.lru_it);
  }
  return it->second.token;
}

Relation Relation::SliceRows(int64_t begin, int64_t count) const {
  std::vector<BatPtr> cols;
  cols.reserve(columns_.size());
  for (const auto& c : columns_) cols.push_back(SliceBat(c, begin, count));
  return Relation(schema_, std::move(cols), name_,
                  SliceIdentity(identity_, begin, count));
}

Relation Relation::TakeRows(const std::vector<int64_t>& indices) const {
  std::vector<BatPtr> cols;
  cols.reserve(columns_.size());
  for (const auto& c : columns_) cols.push_back(c->Take(indices));
  return Relation(schema_, std::move(cols), name_);
}

Relation Relation::SelectColumns(const std::vector<int>& col_indices) const {
  std::vector<BatPtr> cols;
  cols.reserve(col_indices.size());
  for (int i : col_indices) cols.push_back(columns_[static_cast<size_t>(i)]);
  return Relation(schema_.Select(col_indices), std::move(cols), name_);
}

Result<Relation> Relation::RenameColumn(int i, const std::string& new_name) const {
  std::vector<Attribute> attrs = schema_.attributes();
  attrs[static_cast<size_t>(i)].name = new_name;
  RMA_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(attrs)));
  return Relation(std::move(schema), columns_, name_);
}

int64_t Relation::ByteSize() const {
  int64_t bytes = 0;
  for (const auto& c : columns_) bytes += c->ByteSize();
  return bytes;
}

std::string Relation::ToString(int64_t max_rows) const {
  const int ncol = num_columns();
  const int64_t nrow = num_rows();
  const int64_t shown = std::min(nrow, max_rows);
  std::vector<std::vector<std::string>> cells(static_cast<size_t>(shown + 1));
  cells[0].reserve(static_cast<size_t>(ncol));
  for (int c = 0; c < ncol; ++c) cells[0].push_back(schema_.attribute(c).name);
  for (int64_t r = 0; r < shown; ++r) {
    auto& row = cells[static_cast<size_t>(r + 1)];
    row.reserve(static_cast<size_t>(ncol));
    for (int c = 0; c < ncol; ++c) {
      row.push_back(columns_[static_cast<size_t>(c)]->GetString(r));
    }
  }
  std::vector<size_t> width(static_cast<size_t>(ncol), 0);
  for (const auto& row : cells) {
    for (int c = 0; c < ncol; ++c) {
      width[static_cast<size_t>(c)] =
          std::max(width[static_cast<size_t>(c)], row[static_cast<size_t>(c)].size());
    }
  }
  std::ostringstream out;
  for (size_t r = 0; r < cells.size(); ++r) {
    for (int c = 0; c < ncol; ++c) {
      const std::string& s = cells[r][static_cast<size_t>(c)];
      out << s << std::string(width[static_cast<size_t>(c)] - s.size(), ' ');
      if (c + 1 < ncol) out << "  ";
    }
    out << "\n";
    if (r == 0) {
      size_t total = 0;
      for (int c = 0; c < ncol; ++c) total += width[static_cast<size_t>(c)] + 2;
      out << std::string(total > 2 ? total - 2 : 0, '-') << "\n";
    }
  }
  if (shown < nrow) out << "... (" << nrow << " rows)\n";
  return out.str();
}

Status RelationBuilder::AppendRow(std::vector<Value> row) {
  if (static_cast<int>(row.size()) != schema_.num_attributes()) {
    return Status::Invalid("row arity mismatch");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const DataType expect = schema_.attribute(static_cast<int>(i)).type;
    DataType got = ValueType(row[i]);
    // Allow int literals into double columns (common in tests).
    if (expect == DataType::kDouble && got == DataType::kInt64) {
      row[i] = Value(static_cast<double>(std::get<int64_t>(row[i])));
      got = DataType::kDouble;
    }
    if (got != expect) {
      return Status::TypeError("value type mismatch in column " +
                               schema_.attribute(static_cast<int>(i)).name);
    }
    cells_[i].push_back(std::move(row[i]));
  }
  return Status::OK();
}

Result<Relation> RelationBuilder::Finish(std::string name) {
  std::vector<BatPtr> cols;
  cols.reserve(cells_.size());
  for (int c = 0; c < schema_.num_attributes(); ++c) {
    const auto& vals = cells_[static_cast<size_t>(c)];
    switch (schema_.attribute(c).type) {
      case DataType::kInt64: {
        std::vector<int64_t> v;
        v.reserve(vals.size());
        for (const auto& x : vals) v.push_back(std::get<int64_t>(x));
        cols.push_back(MakeInt64Bat(std::move(v)));
        break;
      }
      case DataType::kDouble: {
        std::vector<double> v;
        v.reserve(vals.size());
        for (const auto& x : vals) v.push_back(std::get<double>(x));
        cols.push_back(MakeDoubleBat(std::move(v)));
        break;
      }
      case DataType::kString: {
        std::vector<std::string> v;
        v.reserve(vals.size());
        for (const auto& x : vals) v.push_back(std::get<std::string>(x));
        cols.push_back(MakeStringBat(std::move(v)));
        break;
      }
    }
  }
  return Relation::Make(std::move(schema_), std::move(cols), std::move(name));
}

namespace {

bool ValuesClose(const Value& a, const Value& b, double eps) {
  const DataType ta = ValueType(a);
  const DataType tb = ValueType(b);
  if (ta == DataType::kString || tb == DataType::kString) {
    return ValueEquals(a, b);
  }
  return std::fabs(ValueToDouble(a) - ValueToDouble(b)) <= eps;
}

std::vector<int64_t> Iota(int64_t n) {
  std::vector<int64_t> v(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) v[static_cast<size_t>(i)] = i;
  return v;
}

bool RowsClose(const Relation& a, int64_t i, const Relation& b, int64_t j,
               double eps) {
  for (int c = 0; c < a.num_columns(); ++c) {
    if (!ValuesClose(a.Get(i, c), b.Get(j, c), eps)) return false;
  }
  return true;
}

}  // namespace

bool RelationsEqualOrdered(const Relation& a, const Relation& b, double eps) {
  if (!(a.schema() == b.schema())) return false;
  if (a.num_rows() != b.num_rows()) return false;
  for (int64_t r = 0; r < a.num_rows(); ++r) {
    if (!RowsClose(a, r, b, r, eps)) return false;
  }
  return true;
}

bool RelationsEqualUnordered(const Relation& a, const Relation& b, double eps) {
  if (!(a.schema() == b.schema())) return false;
  if (a.num_rows() != b.num_rows()) return false;
  // Match rows greedily (quadratic; fine for test-sized relations).
  std::vector<int64_t> unmatched = Iota(b.num_rows());
  for (int64_t r = 0; r < a.num_rows(); ++r) {
    bool matched = false;
    for (size_t k = 0; k < unmatched.size(); ++k) {
      if (RowsClose(a, r, b, unmatched[k], eps)) {
        unmatched.erase(unmatched.begin() + static_cast<long>(k));
        matched = true;
        break;
      }
    }
    if (!matched) return false;
  }
  return true;
}

}  // namespace rma
