#ifndef RMA_STORAGE_BAT_OPS_H_
#define RMA_STORAGE_BAT_OPS_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "storage/bat.h"
#include "util/result.h"

namespace rma {

/// Vectorized BAT-level operations (the MonetDB kernel surface).
///
/// Relational operators and the BAT-resident matrix kernels are written in
/// terms of these primitives: multi-column stable argsort, gather
/// (leftfetchjoin), predicated selection producing candidate lists, hash-key
/// maps, and double-column arithmetic.
namespace bat_ops {

/// Stable argsort of rows under the lexicographic order of `keys`
/// (all BATs must have equal length). Returns the permutation `perm` such
/// that row `perm[0]` is smallest.
std::vector<int64_t> ArgSort(const std::vector<BatPtr>& keys);

/// Like ArgSort but also reports via `*unique` whether all key rows are
/// distinct (the paper requires order schemas to form a key).
std::vector<int64_t> ArgSortUnique(const std::vector<BatPtr>& keys,
                                   bool* unique);

/// True if rows are already sorted (non-strictly) under `keys`.
bool IsSorted(const std::vector<BatPtr>& keys);

/// True if all key rows are pairwise distinct. O(n) extra space.
bool IsKey(const std::vector<BatPtr>& keys);

/// 64-bit row hash combining all `keys` at row `i`.
uint64_t HashRow(const std::vector<BatPtr>& keys, int64_t i);

/// Hash map from key-row hash -> row indices. Collisions are resolved by the
/// caller via EqualRows.
using RowIndex = std::unordered_map<uint64_t, std::vector<int64_t>>;
RowIndex BuildRowIndex(const std::vector<BatPtr>& keys);

/// True if row `i` of `a` equals row `j` of `b` column-wise.
bool EqualRows(const std::vector<BatPtr>& a, int64_t i,
               const std::vector<BatPtr>& b, int64_t j);

/// For each row of `probe` keys, finds the index of the matching row in
/// `build` keys. Returns KeyError if some probe row has no match or either
/// side contains duplicate keys — callers fall back to rank alignment
/// (which reports the user-facing uniqueness error). On success the match
/// is a bijection, which proves both key sets unique: no separate key
/// validation is needed. This is the "relative sorting" optimization of
/// Sec. 8.1.
Result<std::vector<int64_t>> AlignByKey(const std::vector<BatPtr>& build,
                                        const std::vector<BatPtr>& probe);

// --- double-column arithmetic (element-wise, equal lengths) ---------------

/// out[i] = a[i] + b[i]; uses the sparse fast path when both are compressed.
BatPtr AddColumns(const BatPtr& a, const BatPtr& b);
BatPtr SubColumns(const BatPtr& a, const BatPtr& b);
BatPtr MulColumns(const BatPtr& a, const BatPtr& b);

std::vector<double> AddDense(const std::vector<double>& a,
                             const std::vector<double>& b);

/// Copies `n` doubles from `src` into `dst[0], dst[stride], ...` (stride in
/// elements). The strided-write building block of the BATs -> contiguous
/// matrix gather.
void CopyDenseToStrided(const double* src, int64_t n, double* dst,
                        int64_t stride);

/// Copies `col[perm[i]]` (or `col[i]` when `perm` is empty) into
/// `dst[i*stride]` for i in [0, n). Dense double columns take a direct
/// array walk instead of per-element virtual fetches — the shared fast path
/// of the matrix gather and the column-to-matrix kernel conversion.
void GatherColumnToStrided(const Bat& col, const std::vector<int64_t>& perm,
                           double* dst, int64_t stride);

/// Packs `k` equal-length column arrays into the row-major `dst` (n×k):
/// dst[i*k + j] = cols[j][perm ? perm[i] : i]. Row/column tiled so each
/// destination cache line is completed while resident instead of being
/// refetched once per column — the cache-aware form of k calls to
/// GatherColumnToStrided.
void PackColumnsRowMajor(const double* const* cols, int64_t k,
                         const int64_t* perm, int64_t n, double* dst);

/// Inverse of PackColumnsRowMajor (identity perm): cols[j][i] = src[i*k + j],
/// with the same tiling applied to the strided reads.
void UnpackRowMajorToColumns(const double* src, int64_t n, int64_t k,
                             double* const* cols);

/// y[i] += alpha * x[i]
void Axpy(double alpha, const std::vector<double>& x, std::vector<double>* y);
/// x[i] *= alpha
void Scale(double alpha, std::vector<double>* x);
double Dot(const std::vector<double>& a, const std::vector<double>& b);
double Sum(const std::vector<double>& a);

// --- predicated selection (candidate lists) --------------------------------

/// Row indices where pred(bat value) holds.
std::vector<int64_t> SelectIndices(const Bat& bat,
                                   const std::function<bool(const Value&)>& pred);

/// Row indices where the double value compares `op` against `threshold`;
/// op is one of "<", "<=", ">", ">=", "==", "!=". Fast path for doubles/ints.
std::vector<int64_t> SelectNumeric(const Bat& bat, const std::string& op,
                                   double threshold);

}  // namespace bat_ops
}  // namespace rma

#endif  // RMA_STORAGE_BAT_OPS_H_
