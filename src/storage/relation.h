#ifndef RMA_STORAGE_RELATION_H_
#define RMA_STORAGE_RELATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/bat.h"
#include "storage/schema.h"
#include "util/result.h"

namespace rma {

/// A relation: a schema plus one BAT per attribute (column-store layout).
///
/// Relations are value types holding shared column pointers; copying a
/// Relation never copies data. The optional `name` identifies the relation in
/// catalogs and appears as the row origin of (1,1)-shaped operations
/// (det/rnk, cf. Table 3 of the paper).
class Relation {
 public:
  Relation() = default;

  /// Validates column count/lengths against the schema.
  static Result<Relation> Make(Schema schema, std::vector<BatPtr> columns,
                               std::string name = "r");

  const Schema& schema() const { return schema_; }
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Stable identity token: assigned once per constructed relation from a
  /// process-wide monotone counter and shared by copies (copies share the
  /// immutable column data, so they denote the same contents). Derived
  /// relations (TakeRows, SelectColumns, RenameColumn, operation results)
  /// get fresh tokens. Because tokens are never reused, they are safe cache
  /// keys: a token can never silently come to denote different data, unlike
  /// raw column pointers whose addresses can recur after deallocation.
  uint64_t identity() const { return identity_; }

  int num_columns() const { return schema_.num_attributes(); }
  int64_t num_rows() const { return columns_.empty() ? 0 : columns_[0]->size(); }

  const BatPtr& column(int i) const { return columns_[static_cast<size_t>(i)]; }
  const std::vector<BatPtr>& columns() const { return columns_; }

  /// Column position by (exact) attribute name.
  Result<int> ColumnIndex(const std::string& name) const {
    return schema_.IndexOf(name);
  }

  /// Column by name, or KeyError.
  Result<BatPtr> ColumnByName(const std::string& name) const;

  /// Boxed cell access (tests, printing, SQL).
  Value Get(int64_t row, int col) const {
    return columns_[static_cast<size_t>(col)]->GetValue(row);
  }

  /// New relation with rows at `indices`, in that order (gather all columns).
  Relation TakeRows(const std::vector<int64_t>& indices) const;

  /// Zero-copy row-range view `[begin, begin + count)` for shard execution
  /// (double columns become DoubleSliceBat views; other column types are
  /// materialized). The slice's identity token is stable: slicing the same
  /// (parent, begin, count) again yields the same token, so prepared-argument
  /// cache entries keyed on shard views stay valid across repeated runs while
  /// never colliding with the parent's token or another range's.
  Relation SliceRows(int64_t begin, int64_t count) const;

  /// New relation with only the columns at `col_indices`.
  Relation SelectColumns(const std::vector<int>& col_indices) const;

  /// New relation with attribute `i` renamed.
  Result<Relation> RenameColumn(int i, const std::string& new_name) const;

  /// Total bytes across columns (drives kernel-policy decisions).
  int64_t ByteSize() const;

  /// Aligned, human-readable table rendering (up to `max_rows` rows).
  std::string ToString(int64_t max_rows = 24) const;

 private:
  Relation(Schema schema, std::vector<BatPtr> columns, std::string name)
      : schema_(std::move(schema)),
        columns_(std::move(columns)),
        name_(std::move(name)) {}

  Relation(Schema schema, std::vector<BatPtr> columns, std::string name,
           uint64_t identity)
      : schema_(std::move(schema)),
        columns_(std::move(columns)),
        name_(std::move(name)),
        identity_(identity) {}

  static uint64_t NextIdentity();
  static uint64_t SliceIdentity(uint64_t parent, int64_t begin, int64_t count);

  Schema schema_;
  std::vector<BatPtr> columns_;
  std::string name_ = "r";
  uint64_t identity_ = NextIdentity();
};

/// Row-at-a-time construction helper used by tests and generators.
class RelationBuilder {
 public:
  explicit RelationBuilder(Schema schema) : schema_(std::move(schema)) {
    cells_.resize(static_cast<size_t>(schema_.num_attributes()));
  }

  /// Appends one row; the value count and types must match the schema.
  Status AppendRow(std::vector<Value> row);

  /// Finishes and produces the relation.
  Result<Relation> Finish(std::string name = "r");

 private:
  Schema schema_;
  std::vector<std::vector<Value>> cells_;  // per column
};

/// Introspection / test hooks for the process-wide slice-identity memo
/// behind Relation::SliceRows. The memo is LRU-bounded; evicting an entry
/// only costs token stability (the next slice of that range mints a fresh
/// token, i.e. a prepared-cache miss), never correctness.
size_t SliceIdentityMemoSize();
/// Overrides the memo capacity (entries; minimum 1). Returns the previous
/// capacity. Tests shrink it to exercise eviction without minting millions
/// of tokens; pass the returned value back to restore.
size_t SetSliceIdentityMemoCapacity(size_t capacity);

/// Equality of contents: same schema, same multiset of rows (order
/// insensitive — relations are sets of tuples). Doubles compare within eps.
bool RelationsEqualUnordered(const Relation& a, const Relation& b,
                             double eps = 1e-9);

/// Equality of contents in row order (used when order is part of the check).
bool RelationsEqualOrdered(const Relation& a, const Relation& b,
                           double eps = 1e-9);

}  // namespace rma

#endif  // RMA_STORAGE_RELATION_H_
