#include "storage/sparse_bat.h"

#include <algorithm>

#include "util/string_util.h"

namespace rma {

std::shared_ptr<SparseDoubleBat> SparseDoubleBat::FromDense(
    const std::vector<double>& dense) {
  std::vector<int64_t> pos;
  std::vector<double> val;
  for (size_t i = 0; i < dense.size(); ++i) {
    if (dense[i] != 0.0) {
      pos.push_back(static_cast<int64_t>(i));
      val.push_back(dense[i]);
    }
  }
  return std::make_shared<SparseDoubleBat>(static_cast<int64_t>(dense.size()),
                                           std::move(pos), std::move(val));
}

BatPtr SparseDoubleBat::MaybeCompress(const BatPtr& bat, double min_zero_share) {
  if (bat->type() != DataType::kDouble) return bat;
  auto* dense = dynamic_cast<const DoubleBat*>(bat.get());
  if (dense == nullptr) return bat;
  const auto& d = dense->data();
  if (d.empty()) return bat;
  int64_t zeros = 0;
  for (double v : d) zeros += (v == 0.0);
  if (static_cast<double>(zeros) / static_cast<double>(d.size()) <
      min_zero_share) {
    return bat;
  }
  return FromDense(d);
}

std::vector<double> SparseDoubleBat::ToDense() const {
  std::vector<double> out(static_cast<size_t>(n_), 0.0);
  for (size_t k = 0; k < positions_.size(); ++k) {
    out[static_cast<size_t>(positions_[k])] = values_[k];
  }
  return out;
}

double SparseDoubleBat::GetDouble(int64_t i) const {
  auto it = std::lower_bound(positions_.begin(), positions_.end(), i);
  if (it != positions_.end() && *it == i) {
    return values_[static_cast<size_t>(it - positions_.begin())];
  }
  return 0.0;
}

std::string SparseDoubleBat::GetString(int64_t i) const {
  return FormatDouble(GetDouble(i));
}

BatPtr SparseDoubleBat::Take(const std::vector<int64_t>& indices) const {
  std::vector<double> out;
  out.reserve(indices.size());
  for (int64_t idx : indices) out.push_back(GetDouble(idx));
  return MakeDoubleBat(std::move(out));
}

int SparseDoubleBat::Compare(int64_t i, const Bat& other, int64_t j) const {
  const double a = GetDouble(i);
  const double b = other.GetDouble(j);
  if (a < b) return -1;
  if (b < a) return 1;
  return 0;
}

std::shared_ptr<SparseDoubleBat> SparseAdd(const SparseDoubleBat& a,
                                           const SparseDoubleBat& b) {
  RMA_DCHECK(a.size() == b.size());
  std::vector<int64_t> pos;
  std::vector<double> val;
  pos.reserve(a.positions().size() + b.positions().size());
  val.reserve(pos.capacity());
  size_t i = 0;
  size_t j = 0;
  const auto& ap = a.positions();
  const auto& bp = b.positions();
  while (i < ap.size() || j < bp.size()) {
    if (j >= bp.size() || (i < ap.size() && ap[i] < bp[j])) {
      pos.push_back(ap[i]);
      val.push_back(a.values()[i]);
      ++i;
    } else if (i >= ap.size() || bp[j] < ap[i]) {
      pos.push_back(bp[j]);
      val.push_back(b.values()[j]);
      ++j;
    } else {
      const double s = a.values()[i] + b.values()[j];
      if (s != 0.0) {
        pos.push_back(ap[i]);
        val.push_back(s);
      }
      ++i;
      ++j;
    }
  }
  return std::make_shared<SparseDoubleBat>(a.size(), std::move(pos),
                                           std::move(val));
}

}  // namespace rma
