#ifndef RMA_STORAGE_BAT_H_
#define RMA_STORAGE_BAT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/data_type.h"
#include "storage/value.h"
#include "util/logging.h"

namespace rma {

class Bat;
using BatPtr = std::shared_ptr<Bat>;

/// A binary association table: one column of a relation (MonetDB style).
///
/// The head (OID column) is dense and implicit — element `i` has OID `i` —
/// exactly like MonetDB's dense-headed BATs. Only the tail (the values) is
/// stored. Relational and matrix operations are expressed as sequences of
/// BAT-level operations (see bat_ops.h); `Take` is MonetDB's leftfetchjoin.
class Bat {
 public:
  virtual ~Bat() = default;

  virtual DataType type() const = 0;
  virtual int64_t size() const = 0;

  /// Boxed access for row-at-a-time layers (SQL evaluation, printing).
  virtual Value GetValue(int64_t i) const = 0;

  /// Numeric access; only valid for numeric BATs.
  virtual double GetDouble(int64_t i) const = 0;

  /// Rendering of a single value.
  virtual std::string GetString(int64_t i) const = 0;

  /// leftfetchjoin: new BAT with values at `indices`, in that order.
  virtual BatPtr Take(const std::vector<int64_t>& indices) const = 0;

  /// Three-way comparison of `this[i]` vs `other[j]` (same column type).
  virtual int Compare(int64_t i, const Bat& other, int64_t j) const = 0;

  /// Hash of element `i` (used for hash joins and key alignment).
  virtual uint64_t Hash(int64_t i) const = 0;

  /// Approximate heap footprint in bytes (drives the kAuto kernel policy).
  virtual int64_t ByteSize() const = 0;
};

/// Concrete column of `T` in (one contiguous std::vector — the MonetDB tail
/// array; also the zero-copy handoff format for numeric data).
template <typename T>
class TypedBat final : public Bat {
 public:
  TypedBat() = default;
  explicit TypedBat(std::vector<T> data) : data_(std::move(data)) {}

  DataType type() const override;
  int64_t size() const override { return static_cast<int64_t>(data_.size()); }

  const std::vector<T>& data() const { return data_; }
  std::vector<T>& mutable_data() { return data_; }

  const T& at(int64_t i) const { return data_[static_cast<size_t>(i)]; }
  void Append(T v) { data_.push_back(std::move(v)); }
  void Reserve(int64_t n) { data_.reserve(static_cast<size_t>(n)); }

  Value GetValue(int64_t i) const override { return Value(at(i)); }
  double GetDouble(int64_t i) const override;
  std::string GetString(int64_t i) const override;

  BatPtr Take(const std::vector<int64_t>& indices) const override {
    std::vector<T> out;
    out.reserve(indices.size());
    for (int64_t idx : indices) out.push_back(at(idx));
    return std::make_shared<TypedBat<T>>(std::move(out));
  }

  int Compare(int64_t i, const Bat& other, int64_t j) const override {
    const auto& o = static_cast<const TypedBat<T>&>(other);
    if (at(i) < o.at(j)) return -1;
    if (o.at(j) < at(i)) return 1;
    return 0;
  }

  uint64_t Hash(int64_t i) const override {
    return std::hash<T>{}(at(i));
  }

  int64_t ByteSize() const override;

 private:
  std::vector<T> data_;
};

using Int64Bat = TypedBat<int64_t>;
using DoubleBat = TypedBat<double>;
using StringBat = TypedBat<std::string>;

/// Convenience constructors.
BatPtr MakeInt64Bat(std::vector<int64_t> v);
BatPtr MakeDoubleBat(std::vector<double> v);
BatPtr MakeStringBat(std::vector<std::string> v);

/// A BAT filled with `n` copies of `v`.
BatPtr MakeConstantBat(const Value& v, int64_t n);

/// Extracts a numeric BAT into a dense double vector (copy).
std::vector<double> ToDoubleVector(const Bat& bat);

/// Extracts `bat[perm[i]]` into a dense double vector (gather + cast).
std::vector<double> GatherDoubleVector(const Bat& bat,
                                       const std::vector<int64_t>& perm);

}  // namespace rma

#endif  // RMA_STORAGE_BAT_H_
