#ifndef RMA_STORAGE_BAT_H_
#define RMA_STORAGE_BAT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "storage/data_type.h"
#include "storage/value.h"
#include "util/logging.h"
#include "util/status.h"

namespace rma {

class Bat;
using BatPtr = std::shared_ptr<Bat>;

/// A binary association table: one column of a relation (MonetDB style).
///
/// The head (OID column) is dense and implicit — element `i` has OID `i` —
/// exactly like MonetDB's dense-headed BATs. Only the tail (the values) is
/// stored. Relational and matrix operations are expressed as sequences of
/// BAT-level operations (see bat_ops.h); `Take` is MonetDB's leftfetchjoin.
class Bat {
 public:
  virtual ~Bat() = default;

  virtual DataType type() const = 0;
  virtual int64_t size() const = 0;

  /// Boxed access for row-at-a-time layers (SQL evaluation, printing).
  virtual Value GetValue(int64_t i) const = 0;

  /// Numeric access; only valid for numeric BATs.
  virtual double GetDouble(int64_t i) const = 0;

  /// Rendering of a single value.
  virtual std::string GetString(int64_t i) const = 0;

  /// leftfetchjoin: new BAT with values at `indices`, in that order.
  virtual BatPtr Take(const std::vector<int64_t>& indices) const = 0;

  /// Three-way comparison of `this[i]` vs `other[j]` (same column type).
  virtual int Compare(int64_t i, const Bat& other, int64_t j) const = 0;

  /// Hash of element `i` (used for hash joins and key alignment).
  virtual uint64_t Hash(int64_t i) const = 0;

  /// Approximate heap footprint in bytes (drives the kAuto kernel policy).
  virtual int64_t ByteSize() const = 0;

  /// Raw pointer to `size()` contiguous doubles when this BAT stores its
  /// tail that way (dense double columns and their row-range slice views),
  /// else nullptr. The single capability probe behind every raw-data fast
  /// path (gathers, packs, SIMD kernels), replacing per-site dynamic_casts
  /// so zero-copy views stay on the fast paths alongside DoubleBat.
  ///
  /// Out-of-core columns (storage/paged_bat.h) return non-null only while
  /// pinned; see PinData/StableData below.
  virtual const double* ContiguousDoubleData() const { return nullptr; }

  /// Residency bracket for out-of-core columns. PinData guarantees that
  /// until the matching UnpinData, ContiguousDoubleData() (if the column is
  /// dense double) returns a pointer that stays valid. Pins nest. Malloc-
  /// backed BATs are always resident, so the default is a no-op; the staged
  /// executor brackets every operator's arguments (core/dispatch.cc) and
  /// per-element virtual accessors pin transiently.
  virtual Status PinData() const { return Status::OK(); }
  virtual void UnpinData() const {}

  /// True when pointers obtained from ContiguousDoubleData() remain valid
  /// for the lifetime of this BAT (malloc-backed columns). Paged columns
  /// return false — their frame can move across evict/reload — so slice
  /// views and caches must not capture raw pointers into them.
  virtual bool StableData() const { return true; }
};

/// Concrete column of `T` in (one contiguous std::vector — the MonetDB tail
/// array; also the zero-copy handoff format for numeric data).
template <typename T>
class TypedBat final : public Bat {
 public:
  TypedBat() = default;
  explicit TypedBat(std::vector<T> data) : data_(std::move(data)) {}

  DataType type() const override;
  int64_t size() const override { return static_cast<int64_t>(data_.size()); }

  const std::vector<T>& data() const { return data_; }
  std::vector<T>& mutable_data() { return data_; }

  const T& at(int64_t i) const { return data_[static_cast<size_t>(i)]; }
  void Append(T v) { data_.push_back(std::move(v)); }
  void Reserve(int64_t n) { data_.reserve(static_cast<size_t>(n)); }

  Value GetValue(int64_t i) const override { return Value(at(i)); }
  double GetDouble(int64_t i) const override;
  std::string GetString(int64_t i) const override;

  BatPtr Take(const std::vector<int64_t>& indices) const override {
    std::vector<T> out;
    out.reserve(indices.size());
    for (int64_t idx : indices) out.push_back(at(idx));
    return std::make_shared<TypedBat<T>>(std::move(out));
  }

  int Compare(int64_t i, const Bat& other, int64_t j) const override {
    if (const auto* o = dynamic_cast<const TypedBat<T>*>(&other)) {
      if (at(i) < o->at(j)) return -1;
      if (o->at(j) < at(i)) return 1;
      return 0;
    }
    // `other` holds the same column type in a different representation
    // (slice view, sparse column): compare through the virtual accessors.
    if constexpr (std::is_same_v<T, std::string>) {
      const std::string a = GetString(i);
      const std::string b = other.GetString(j);
      if (a < b) return -1;
      if (b < a) return 1;
      return 0;
    } else {
      const double a = GetDouble(i);
      const double b = other.GetDouble(j);
      if (a < b) return -1;
      if (b < a) return 1;
      return 0;
    }
  }

  uint64_t Hash(int64_t i) const override {
    return std::hash<T>{}(at(i));
  }

  int64_t ByteSize() const override;

  const double* ContiguousDoubleData() const override {
    if constexpr (std::is_same_v<T, double>) {
      return data_.data();
    } else {
      return nullptr;
    }
  }

 private:
  std::vector<T> data_;
};

using Int64Bat = TypedBat<int64_t>;
using DoubleBat = TypedBat<double>;
using StringBat = TypedBat<std::string>;

/// Zero-copy row-range view over a contiguous double column. Holds a shared
/// reference to the owning BAT so the underlying tail array outlives every
/// shard view; exposes its window through ContiguousDoubleData so slices ride
/// the same raw-pointer fast paths as DoubleBat. This is the storage half of
/// the shard boundary (shard id + row range + column set): a view carries no
/// state beyond {owner, offset pointer, length}, so the same contract can
/// later be backed by another NUMA pool or process.
class DoubleSliceBat final : public Bat {
 public:
  DoubleSliceBat(BatPtr owner, const double* data, int64_t n)
      : owner_(std::move(owner)), data_(data), n_(n) {}

  DataType type() const override { return DataType::kDouble; }
  int64_t size() const override { return n_; }

  Value GetValue(int64_t i) const override { return Value(data_[i]); }
  double GetDouble(int64_t i) const override { return data_[i]; }
  std::string GetString(int64_t i) const override;

  BatPtr Take(const std::vector<int64_t>& indices) const override {
    std::vector<double> out;
    out.reserve(indices.size());
    for (int64_t idx : indices) out.push_back(data_[idx]);
    return std::make_shared<DoubleBat>(std::move(out));
  }

  int Compare(int64_t i, const Bat& other, int64_t j) const override {
    const double a = data_[i];
    const double b = other.GetDouble(j);
    if (a < b) return -1;
    if (b < a) return 1;
    return 0;
  }

  // Matches DoubleBat::Hash so a slice and its base column agree on keys.
  uint64_t Hash(int64_t i) const override {
    return std::hash<double>{}(data_[i]);
  }

  // Views own no tail storage; the kAuto policy should not double-count the
  // parent's bytes when both appear in one plan.
  int64_t ByteSize() const override { return 0; }

  const double* ContiguousDoubleData() const override { return data_; }

  const BatPtr& owner() const { return owner_; }

 private:
  BatPtr owner_;
  const double* data_;
  int64_t n_;
};

/// Row-range slice `[offset, offset + count)` of `b`. Zero-copy when the
/// source exposes contiguous doubles (re-slicing a slice shares the original
/// owner); otherwise materializes the range via Take. The planner only shards
/// fully dense plans, so the copy fallback stays off the hot path.
BatPtr SliceBat(const BatPtr& b, int64_t offset, int64_t count);

/// Convenience constructors.
BatPtr MakeInt64Bat(std::vector<int64_t> v);
BatPtr MakeDoubleBat(std::vector<double> v);
BatPtr MakeStringBat(std::vector<std::string> v);

/// A BAT filled with `n` copies of `v`.
BatPtr MakeConstantBat(const Value& v, int64_t n);

/// Extracts a numeric BAT into a dense double vector (copy).
std::vector<double> ToDoubleVector(const Bat& bat);

/// Extracts `bat[perm[i]]` into a dense double vector (gather + cast).
std::vector<double> GatherDoubleVector(const Bat& bat,
                                       const std::vector<int64_t>& perm);

}  // namespace rma

#endif  // RMA_STORAGE_BAT_H_
