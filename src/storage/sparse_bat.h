#ifndef RMA_STORAGE_SPARSE_BAT_H_
#define RMA_STORAGE_SPARSE_BAT_H_

#include <memory>
#include <vector>

#include "storage/bat.h"

namespace rma {

/// Zero-suppressed double column: only non-zero (position, value) pairs are
/// stored, positions ascending.
///
/// Stands in for MonetDB's column compression in the sparse-relation
/// experiment (Table 5): element-wise operations touch only the stored
/// entries, so `add` gets faster as the zero share grows.
class SparseDoubleBat final : public Bat {
 public:
  SparseDoubleBat(int64_t n, std::vector<int64_t> positions,
                  std::vector<double> values)
      : n_(n), positions_(std::move(positions)), values_(std::move(values)) {
    RMA_DCHECK(positions_.size() == values_.size());
  }

  /// Builds a sparse column from a dense vector.
  static std::shared_ptr<SparseDoubleBat> FromDense(
      const std::vector<double>& dense);

  /// Returns a sparse column if the zero share of `bat` is at least
  /// `min_zero_share` (and `bat` is a dense double column), else `bat`.
  static BatPtr MaybeCompress(const BatPtr& bat, double min_zero_share = 0.5);

  DataType type() const override { return DataType::kDouble; }
  int64_t size() const override { return n_; }

  int64_t NumNonZero() const { return static_cast<int64_t>(values_.size()); }
  const std::vector<int64_t>& positions() const { return positions_; }
  const std::vector<double>& values() const { return values_; }

  /// Materializes the dense representation.
  std::vector<double> ToDense() const;

  Value GetValue(int64_t i) const override { return Value(GetDouble(i)); }
  double GetDouble(int64_t i) const override;
  std::string GetString(int64_t i) const override;

  BatPtr Take(const std::vector<int64_t>& indices) const override;
  int Compare(int64_t i, const Bat& other, int64_t j) const override;
  uint64_t Hash(int64_t i) const override {
    return std::hash<double>{}(GetDouble(i));
  }
  int64_t ByteSize() const override {
    return NumNonZero() * static_cast<int64_t>(sizeof(int64_t) + sizeof(double));
  }

 private:
  int64_t n_;
  std::vector<int64_t> positions_;
  std::vector<double> values_;
};

/// Element-wise sum of two equal-length sparse columns; result is sparse.
/// This is the compressed fast path used by the BAT `add` kernel.
std::shared_ptr<SparseDoubleBat> SparseAdd(const SparseDoubleBat& a,
                                           const SparseDoubleBat& b);

}  // namespace rma

#endif  // RMA_STORAGE_SPARSE_BAT_H_
