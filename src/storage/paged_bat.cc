#include "storage/paged_bat.h"

#include <atomic>
#include <cstdio>
#include <cstring>

#include "util/string_util.h"

namespace rma {

template <typename T>
PagedBat<T>::PagedBat(std::shared_ptr<Pager> pager,
                      std::shared_ptr<BufferPool> pool, uint64_t first_page,
                      uint64_t n_pages, int64_t rows)
    : pager_(std::move(pager)),
      pool_(std::move(pool)),
      first_page_(first_page),
      n_pages_(n_pages),
      rows_(rows) {
  RMA_CHECK(pager_ != nullptr && pool_ != nullptr);
}

template <typename T>
PagedBat<T>::~PagedBat() {
  MutexLock lock(mu_);
  RMA_CHECK(pins_ == 0 && "PagedBat destroyed while pinned");
}

template <>
DataType PagedBat<double>::type() const {
  return DataType::kDouble;
}
template <>
DataType PagedBat<int64_t>::type() const {
  return DataType::kInt64;
}

template <typename T>
Status PagedBat<T>::PinData() const {
  MutexLock lock(mu_);
  if (pins_ == 0) {
    auto pinned = pool_->Pin(pager_, first_page_, n_pages_,
                             rows_ * static_cast<int64_t>(sizeof(T)));
    if (!pinned.ok()) return pinned.status();
    extent_ = std::move(*pinned);
  }
  ++pins_;
  return Status::OK();
}

template <typename T>
void PagedBat<T>::UnpinData() const {
  MutexLock lock(mu_);
  RMA_CHECK(pins_ > 0 && "UnpinData without a matching PinData");
  if (--pins_ == 0) extent_.Release();
}

template <typename T>
const double* PagedBat<T>::ContiguousDoubleData() const {
  if constexpr (std::is_same_v<T, double>) {
    MutexLock lock(mu_);
    return pins_ > 0 ? ValuesLocked() : nullptr;
  } else {
    return nullptr;
  }
}

template <typename T>
T PagedBat<T>::ValueAt(int64_t i) const {
  MutexLock lock(mu_);
  if (pins_ == 0) {
    auto pinned = pool_->Pin(pager_, first_page_, n_pages_,
                             rows_ * static_cast<int64_t>(sizeof(T)));
    if (!pinned.ok()) {
      static std::atomic<bool> warned{false};
      if (!warned.exchange(true)) {
        std::fprintf(stderr, "rma: paged column read failed: %s\n",
                     pinned.status().ToString().c_str());
      }
      return T{};
    }
    const T v = reinterpret_cast<const T*>(pinned->data())[i];
    // ~PinnedExtent unpins on scope exit.
    return v;
  }
  return ValuesLocked()[i];
}

template <>
std::string PagedBat<double>::GetString(int64_t i) const {
  return FormatDouble(ValueAt(i));
}
template <>
std::string PagedBat<int64_t>::GetString(int64_t i) const {
  return std::to_string(ValueAt(i));
}

template <typename T>
BatPtr PagedBat<T>::Take(const std::vector<int64_t>& indices) const {
  std::vector<T> out(indices.size());
  if (PinData().ok()) {
    {
      MutexLock lock(mu_);
      const T* v = ValuesLocked();
      for (size_t k = 0; k < indices.size(); ++k) {
        out[k] = v[indices[k]];
      }
    }
    UnpinData();
  } else {
    // Degraded path: per-element reads carry the warn-once behaviour.
    for (size_t k = 0; k < indices.size(); ++k) out[k] = ValueAt(indices[k]);
  }
  return std::make_shared<TypedBat<T>>(std::move(out));
}

template <typename T>
int PagedBat<T>::Compare(int64_t i, const Bat& other, int64_t j) const {
  const T a = ValueAt(i);
  // Typed comparison whenever the other side exposes T exactly (another
  // paged column or a malloc TypedBat<T>), mirroring TypedBat<T>::Compare;
  // otherwise through the double accessor like every other representation.
  if (const auto* p = dynamic_cast<const PagedBat<T>*>(&other)) {
    const T b = p->ValueAt(j);
    if (a < b) return -1;
    if (b < a) return 1;
    return 0;
  }
  if (const auto* t = dynamic_cast<const TypedBat<T>*>(&other)) {
    const T b = t->at(j);
    if (a < b) return -1;
    if (b < a) return 1;
    return 0;
  }
  const double da = static_cast<double>(a);
  const double db = other.GetDouble(j);
  if (da < db) return -1;
  if (db < da) return 1;
  return 0;
}

template class PagedBat<double>;
template class PagedBat<int64_t>;

PinnedRelations::~PinnedRelations() {
  for (auto it = pinned_.rbegin(); it != pinned_.rend(); ++it) {
    (*it)->UnpinData();
  }
}

Status PinnedRelations::Pin(const Relation& r) {
  for (const BatPtr& col : r.columns()) {
    RMA_RETURN_NOT_OK(col->PinData());
    pinned_.push_back(col);
  }
  return Status::OK();
}

Result<Relation> MaterializeUnstable(const Relation& r) {
  bool all_stable = true;
  for (const BatPtr& col : r.columns()) {
    if (!col->StableData()) {
      all_stable = false;
      break;
    }
  }
  if (all_stable) return r;

  std::vector<BatPtr> cols;
  cols.reserve(r.columns().size());
  for (const BatPtr& col : r.columns()) {
    if (col->StableData()) {
      cols.push_back(col);
      continue;
    }
    RMA_RETURN_NOT_OK(col->PinData());
    const int64_t n = col->size();
    BatPtr copy;
    if (col->type() == DataType::kDouble) {
      const double* d = col->ContiguousDoubleData();
      std::vector<double> v(static_cast<size_t>(n));
      if (d != nullptr) {
        std::memcpy(v.data(), d, static_cast<size_t>(n) * sizeof(double));
      } else {
        for (int64_t i = 0; i < n; ++i) v[static_cast<size_t>(i)] = col->GetDouble(i);
      }
      copy = MakeDoubleBat(std::move(v));
    } else if (col->type() == DataType::kInt64) {
      std::vector<int64_t> v(static_cast<size_t>(n));
      for (int64_t i = 0; i < n; ++i) {
        v[static_cast<size_t>(i)] = std::get<int64_t>(col->GetValue(i));
      }
      copy = MakeInt64Bat(std::move(v));
    } else {
      std::vector<std::string> v(static_cast<size_t>(n));
      for (int64_t i = 0; i < n; ++i) v[static_cast<size_t>(i)] = col->GetString(i);
      copy = MakeStringBat(std::move(v));
    }
    col->UnpinData();
    cols.push_back(std::move(copy));
  }
  RMA_ASSIGN_OR_RETURN(Relation out,
                       Relation::Make(r.schema(), std::move(cols), r.name()));
  return out;
}

}  // namespace rma
