#include "storage/paged_store.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <set>
#include <sstream>
#include <thread>

#include "storage/paged_bat.h"
#include "util/string_util.h"

namespace rma {

namespace {

constexpr char kManifestName[] = "manifest";
constexpr char kManifestTmpName[] = "manifest.tmp";
constexpr char kManifestHeader[] = "rma-manifest v1";

std::string Errno(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

/// %XX-escapes whitespace and '%' so names survive the space-separated
/// manifest line format; a lone "%" encodes the empty string.
std::string Escape(const std::string& s) {
  if (s.empty()) return "%";
  std::string out;
  for (const char c : s) {
    if (c == '%' || c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02X",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

Result<std::string> Unescape(const std::string& s) {
  if (s == "%") return std::string();
  std::string out;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '%') {
      out += s[i];
      continue;
    }
    if (i + 2 >= s.size()) {
      return Status::IoError("manifest: bad escape in '" + s + "'");
    }
    out += static_cast<char>(std::stoi(s.substr(i + 1, 2), nullptr, 16));
    i += 2;
  }
  return out;
}

const char* TypeName(DataType t) {
  switch (t) {
    case DataType::kInt64:
      return "INT64";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "STRING";
  }
  return "?";
}

Result<DataType> TypeFromName(const std::string& s) {
  if (s == "INT64") return DataType::kInt64;
  if (s == "DOUBLE") return DataType::kDouble;
  if (s == "STRING") return DataType::kString;
  return Status::IoError("manifest: unknown column type '" + s + "'");
}

Status WriteFileDurably(const std::string& path, const std::string& content) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return Status::IoError(Errno("create", path));
  const char* p = content.data();
  size_t n = content.size();
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      const Status st = Status::IoError(Errno("write", path));
      ::close(fd);
      return st;
    }
    p += w;
    n -= static_cast<size_t>(w);
  }
  if (::fsync(fd) != 0) {
    const Status st = Status::IoError(Errno("fsync", path));
    ::close(fd);
    return st;
  }
  ::close(fd);
  return Status::OK();
}

Status SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return Status::IoError(Errno("open", dir));
  // Some filesystems reject fsync on directories; the rename is still
  // ordered on the ones we target, so treat EINVAL as success.
  if (::fsync(fd) != 0 && errno != EINVAL) {
    const Status st = Status::IoError(Errno("fsync", dir));
    ::close(fd);
    return st;
  }
  ::close(fd);
  return Status::OK();
}

/// Reads an entire file; NotFound when it does not exist.
Result<std::string> ReadFileFully(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound(path);
    return Status::IoError(Errno("open", path));
  }
  std::string out;
  char buf[1 << 16];
  for (;;) {
    const ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r < 0) {
      if (errno == EINTR) continue;
      const Status st = Status::IoError(Errno("read", path));
      ::close(fd);
      return st;
    }
    if (r == 0) break;
    out.append(buf, static_cast<size_t>(r));
  }
  ::close(fd);
  return out;
}

uint64_t PagesFor(int64_t bytes, int64_t payload) {
  if (bytes <= 0) return 1;  // every column owns at least one page
  return static_cast<uint64_t>((bytes + payload - 1) / payload);
}

}  // namespace

PagedStore::PagedStore(std::string dir, const PagedStoreOptions& opts)
    : dir_(std::move(dir)),
      opts_(opts),
      pool_(std::make_shared<BufferPool>(opts.pool_bytes)) {}

Result<std::shared_ptr<PagedStore>> PagedStore::Open(
    const std::string& dir, const PagedStoreOptions& opts) {
  if (opts.pool_bytes <= 0) {
    return Status::Invalid("buffer-pool budget must be positive");
  }
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IoError(Errno("mkdir", dir));
  }
  std::shared_ptr<PagedStore> store(new PagedStore(dir, opts));

  Result<std::string> manifest = ReadFileFully(dir + "/" + kManifestName);
  MutexLock lock(store->mu_);
  if (manifest.ok()) {
    RMA_RETURN_NOT_OK(store->LoadManifestLocked(*manifest));
  } else if (!manifest.status().IsNotFound()) {
    return manifest.status();
  }

  // Recovery: admit only the tables whose files check out; a torn or
  // missing column discards its whole table (the manifest swing was the
  // commit point, so this only happens under bit rot or manual tampering —
  // never from a clean crash).
  bool dropped = false;
  for (auto it = store->tables_.begin(); it != store->tables_.end();) {
    Result<Relation> rel = store->LoadTable(it->second);
    if (rel.ok()) {
      store->recovered_.emplace_back(it->second.display_name, *rel);
      ++it;
    } else {
      std::fprintf(stderr, "rma: discarding table '%s': %s\n",
                   it->second.display_name.c_str(),
                   rel.status().ToString().c_str());
      store->RemoveFilesOf(it->second);
      it = store->tables_.erase(it);
      dropped = true;
    }
  }
  if (dropped) RMA_RETURN_NOT_OK(store->WriteManifestLocked());
  store->CollectGarbageLocked();
  return store;
}

std::string PagedStore::ManifestTextLocked() const {
  std::ostringstream out;
  out << kManifestHeader << "\n";
  out << "next-file-id " << next_file_id_ << "\n";
  for (const auto& [key, meta] : tables_) {
    out << "table " << Escape(key) << " name " << Escape(meta.display_name)
        << " rows " << meta.rows << "\n";
    for (const ColumnMeta& c : meta.cols) {
      out << "col " << Escape(c.attr) << " " << TypeName(c.type) << " "
          << c.file << " " << c.first_page << " " << c.n_pages << " "
          << c.bytes << "\n";
    }
    out << "endtable\n";
  }
  return out.str();
}

Status PagedStore::WriteManifestLocked() {
  std::string text = ManifestTextLocked();
  char sum[32];
  std::snprintf(sum, sizeof(sum), "checksum %016llx\n",
                static_cast<unsigned long long>(
                    StorageChecksum(text.data(), text.size())));
  text += sum;
  const std::string tmp = dir_ + "/" + kManifestTmpName;
  const std::string final_path = dir_ + "/" + kManifestName;
  RMA_RETURN_NOT_OK(WriteFileDurably(tmp, text));
  if (::rename(tmp.c_str(), final_path.c_str()) != 0) {
    return Status::IoError(Errno("rename", tmp));
  }
  return SyncDir(dir_);
}

Status PagedStore::LoadManifestLocked(const std::string& text) {
  const size_t sum_pos = text.rfind("checksum ");
  if (sum_pos == std::string::npos ||
      (sum_pos != 0 && text[sum_pos - 1] != '\n')) {
    return Status::IoError("manifest: missing checksum line");
  }
  const std::string body = text.substr(0, sum_pos);
  unsigned long long stored = 0;
  if (std::sscanf(text.c_str() + sum_pos, "checksum %llx", &stored) != 1 ||
      stored != StorageChecksum(body.data(), body.size())) {
    return Status::IoError("manifest: checksum mismatch");
  }

  std::istringstream in(body);
  std::string line;
  if (!std::getline(in, line) || line != kManifestHeader) {
    return Status::IoError("manifest: bad header line '" + line + "'");
  }
  unsigned long long next_id = 0;
  if (!std::getline(in, line) ||
      std::sscanf(line.c_str(), "next-file-id %llu", &next_id) != 1) {
    return Status::IoError("manifest: bad next-file-id line");
  }
  next_file_id_ = next_id;

  std::string key;
  TableMeta meta;
  bool in_table = false;
  while (std::getline(in, line)) {
    std::istringstream words(line);
    std::string tag;
    words >> tag;
    if (tag == "table") {
      if (in_table) return Status::IoError("manifest: nested table record");
      std::string ekey, kw_name, ename, kw_rows;
      words >> ekey >> kw_name >> ename >> kw_rows >> meta.rows;
      if (!words || kw_name != "name" || kw_rows != "rows") {
        return Status::IoError("manifest: bad table line '" + line + "'");
      }
      RMA_ASSIGN_OR_RETURN(key, Unescape(ekey));
      RMA_ASSIGN_OR_RETURN(meta.display_name, Unescape(ename));
      meta.cols.clear();
      in_table = true;
    } else if (tag == "col") {
      if (!in_table) return Status::IoError("manifest: col outside table");
      std::string eattr, tname;
      ColumnMeta c;
      words >> eattr >> tname >> c.file >> c.first_page >> c.n_pages >>
          c.bytes;
      if (!words) {
        return Status::IoError("manifest: bad col line '" + line + "'");
      }
      RMA_ASSIGN_OR_RETURN(c.attr, Unescape(eattr));
      RMA_ASSIGN_OR_RETURN(c.type, TypeFromName(tname));
      meta.cols.push_back(std::move(c));
    } else if (tag == "endtable") {
      if (!in_table) return Status::IoError("manifest: stray endtable");
      tables_[key] = std::move(meta);
      meta = TableMeta();
      in_table = false;
    } else if (tag.empty()) {
      continue;
    } else {
      return Status::IoError("manifest: unknown record '" + tag + "'");
    }
  }
  if (in_table) return Status::IoError("manifest: unterminated table record");
  return Status::OK();
}

Result<Relation> PagedStore::LoadTable(const TableMeta& meta) {
  std::vector<Attribute> attrs;
  std::vector<BatPtr> cols;
  for (const ColumnMeta& c : meta.cols) {
    const std::string path = dir_ + "/" + c.file;
    RMA_ASSIGN_OR_RETURN(std::shared_ptr<Pager> pager, Pager::Open(path));
    if (pager->page_count() < c.first_page + c.n_pages - 1) {
      return Status::IoError(path + ": extent exceeds committed page count");
    }
    const int64_t expected =
        (c.type == DataType::kString)
            ? c.bytes
            : meta.rows * static_cast<int64_t>(sizeof(double));
    if (static_cast<int64_t>(c.n_pages) * pager->payload_bytes() < expected) {
      return Status::IoError(path + ": extent smaller than the column");
    }
    switch (c.type) {
      case DataType::kDouble:
        cols.push_back(std::make_shared<PagedDoubleBat>(
            pager, pool_, c.first_page, c.n_pages, meta.rows));
        break;
      case DataType::kInt64:
        cols.push_back(std::make_shared<PagedInt64Bat>(
            pager, pool_, c.first_page, c.n_pages, meta.rows));
        break;
      case DataType::kString: {
        // Strings load eagerly (varlen tails have no fixed-stride frame for
        // the kernels to exploit); page checksums verify on this read.
        std::vector<char> raw(static_cast<size_t>(
            static_cast<int64_t>(c.n_pages) * pager->payload_bytes()));
        for (uint64_t i = 0; i < c.n_pages; ++i) {
          RMA_RETURN_NOT_OK(pager->ReadPage(
              c.first_page + i,
              raw.data() + static_cast<int64_t>(i) * pager->payload_bytes()));
        }
        const char* p = raw.data();
        const char* end = raw.data() + c.bytes;
        uint64_t count = 0;
        if (c.bytes < static_cast<int64_t>(sizeof(uint64_t))) {
          return Status::IoError(path + ": string column too short");
        }
        std::memcpy(&count, p, sizeof(uint64_t));
        p += sizeof(uint64_t);
        if (count != static_cast<uint64_t>(meta.rows)) {
          return Status::IoError(path + ": string column row-count mismatch");
        }
        std::vector<std::string> values;
        values.reserve(count);
        for (uint64_t i = 0; i < count; ++i) {
          uint64_t len = 0;
          if (p + sizeof(uint64_t) > end) {
            return Status::IoError(path + ": string column truncated");
          }
          std::memcpy(&len, p, sizeof(uint64_t));
          p += sizeof(uint64_t);
          if (p + len > end) {
            return Status::IoError(path + ": string column truncated");
          }
          values.emplace_back(p, len);
          p += len;
        }
        cols.push_back(MakeStringBat(std::move(values)));
        break;
      }
    }
    attrs.push_back({c.attr, c.type});
  }
  RMA_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(attrs)));
  RMA_ASSIGN_OR_RETURN(
      Relation rel,
      Relation::Make(std::move(schema), std::move(cols), meta.display_name));
  return rel;
}

Result<PagedStore::ColumnMeta> PagedStore::WriteColumnLocked(
    const std::string& attr, const Bat& col) {
  ColumnMeta cm;
  cm.attr = attr;
  cm.type = col.type();
  cm.file = "c" + std::to_string(next_file_id_++) + ".col";
  const std::string path = dir_ + "/" + cm.file;
  RMA_ASSIGN_OR_RETURN(std::shared_ptr<Pager> pager,
                       Pager::Create(path, opts_.page_bytes));
  const int64_t payload = pager->payload_bytes();
  const int64_t n = col.size();

  if (cm.type == DataType::kString) {
    // Varlen serialization: [u64 count] then per value [u64 len][bytes].
    std::string buf;
    uint64_t count = static_cast<uint64_t>(n);
    buf.append(reinterpret_cast<const char*>(&count), sizeof(count));
    for (int64_t i = 0; i < n; ++i) {
      const std::string v = col.GetString(i);
      const uint64_t len = v.size();
      buf.append(reinterpret_cast<const char*>(&len), sizeof(len));
      buf.append(v);
    }
    cm.bytes = static_cast<int64_t>(buf.size());
    cm.n_pages = PagesFor(cm.bytes, payload);
    RMA_ASSIGN_OR_RETURN(cm.first_page, pager->AllocateExtent(cm.n_pages));
    std::vector<char> page(static_cast<size_t>(payload));
    for (uint64_t i = 0; i < cm.n_pages; ++i) {
      std::memset(page.data(), 0, page.size());
      const size_t off = static_cast<size_t>(i) * static_cast<size_t>(payload);
      if (off < buf.size()) {
        std::memcpy(page.data(), buf.data() + off,
                    std::min(buf.size() - off, page.size()));
      }
      RMA_RETURN_NOT_OK(pager->WritePage(cm.first_page + i, page.data()));
    }
    RMA_RETURN_NOT_OK(pager->Sync());
    return cm;
  }

  // Fixed-width numeric tail, written through the buffer pool so bulk load
  // exercises dirty frames + writeback (and eviction under pressure behaves
  // exactly as at query time). Flush is the durability point.
  cm.bytes = n * static_cast<int64_t>(sizeof(double));
  cm.n_pages = PagesFor(cm.bytes, payload);
  RMA_ASSIGN_OR_RETURN(cm.first_page, pager->AllocateExtent(cm.n_pages));
  {
    RMA_ASSIGN_OR_RETURN(
        PinnedExtent frame,
        pool_->Create(pager, cm.first_page, cm.n_pages, cm.bytes));
    if (cm.type == DataType::kDouble) {
      auto* out = reinterpret_cast<double*>(frame.mutable_data());
      if (const double* d = col.ContiguousDoubleData()) {
        std::memcpy(out, d, static_cast<size_t>(cm.bytes));
      } else {
        for (int64_t i = 0; i < n; ++i) out[i] = col.GetDouble(i);
      }
    } else {
      auto* out = reinterpret_cast<int64_t*>(frame.mutable_data());
      if (const auto* i64 = dynamic_cast<const Int64Bat*>(&col)) {
        std::memcpy(out, i64->data().data(), static_cast<size_t>(cm.bytes));
      } else {
        for (int64_t i = 0; i < n; ++i) {
          out[i] = std::get<int64_t>(col.GetValue(i));
        }
      }
    }
    frame.MarkDirty();
  }
  RMA_RETURN_NOT_OK(pool_->Flush(pager));
  return cm;
}

Result<Relation> PagedStore::SaveTable(const std::string& name,
                                       const Relation& rel) {
  // Keep source columns resident across the whole write: re-registering a
  // store-backed relation reads through the same pool it writes to.
  PinnedRelations src;
  RMA_RETURN_NOT_OK(src.Pin(rel));

  const std::string key = ToLower(name);
  MutexLock lock(mu_);
  TableMeta meta;
  meta.display_name = name;
  meta.rows = rel.num_rows();
  Status st;
  for (int i = 0; i < rel.num_columns(); ++i) {
    auto cm = WriteColumnLocked(rel.schema().attribute(i).name,
                                *rel.column(i));
    if (!cm.ok()) {
      st = cm.status();
      break;
    }
    meta.cols.push_back(std::move(*cm));
    if (opts_.sleep_ms_between_columns > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(opts_.sleep_ms_between_columns));
    }
  }
  if (!st.ok()) {
    RemoveFilesOf(meta);
    return st;
  }

  TableMeta old;
  bool had_old = false;
  if (auto it = tables_.find(key); it != tables_.end()) {
    old = std::move(it->second);
    had_old = true;
  }
  tables_[key] = meta;
  const Status mst = WriteManifestLocked();
  if (!mst.ok()) {
    // Roll back: the durable catalog still describes the old state.
    if (had_old) {
      tables_[key] = std::move(old);
    } else {
      tables_.erase(key);
    }
    RemoveFilesOf(meta);
    return mst;
  }
  if (had_old) RemoveFilesOf(old);
  return LoadTable(meta);
}

Status PagedStore::DropTable(const std::string& name) {
  MutexLock lock(mu_);
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("table not found: " + name);
  }
  TableMeta old = std::move(it->second);
  tables_.erase(it);
  const Status st = WriteManifestLocked();
  if (!st.ok()) {
    tables_[ToLower(name)] = std::move(old);
    return st;
  }
  RemoveFilesOf(old);
  return Status::OK();
}

void PagedStore::RemoveFilesOf(const TableMeta& meta) {
  for (const ColumnMeta& c : meta.cols) {
    ::unlink((dir_ + "/" + c.file).c_str());
  }
}

void PagedStore::CollectGarbageLocked() {
  std::set<std::string> referenced;
  for (const auto& [key, meta] : tables_) {
    (void)key;
    for (const ColumnMeta& c : meta.cols) referenced.insert(c.file);
  }
  DIR* d = ::opendir(dir_.c_str());
  if (d == nullptr) return;
  std::vector<std::string> doomed;
  while (const dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    const bool is_col = name.size() > 5 && name.rfind(".col") == name.size() - 4 &&
                        name[0] == 'c';
    if ((is_col && referenced.count(name) == 0) || name == kManifestTmpName) {
      doomed.push_back(name);
    }
  }
  ::closedir(d);
  for (const std::string& name : doomed) {
    std::fprintf(stderr, "rma: removing orphaned %s/%s\n", dir_.c_str(),
                 name.c_str());
    ::unlink((dir_ + "/" + name).c_str());
  }
}

}  // namespace rma
