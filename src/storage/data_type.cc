#include "storage/data_type.h"

namespace rma {

const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::kInt64:
      return "INT";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "STRING";
  }
  return "?";
}

}  // namespace rma
