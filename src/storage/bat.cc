#include "storage/bat.h"

#include "util/string_util.h"

namespace rma {

template <>
DataType TypedBat<int64_t>::type() const {
  return DataType::kInt64;
}
template <>
DataType TypedBat<double>::type() const {
  return DataType::kDouble;
}
template <>
DataType TypedBat<std::string>::type() const {
  return DataType::kString;
}

template <>
double TypedBat<int64_t>::GetDouble(int64_t i) const {
  return static_cast<double>(at(i));
}
template <>
double TypedBat<double>::GetDouble(int64_t i) const {
  return at(i);
}
template <>
double TypedBat<std::string>::GetDouble(int64_t) const {
  RMA_CHECK(false && "GetDouble on a string BAT");
  return 0.0;
}

template <>
std::string TypedBat<int64_t>::GetString(int64_t i) const {
  return std::to_string(at(i));
}
template <>
std::string TypedBat<double>::GetString(int64_t i) const {
  return FormatDouble(at(i));
}
template <>
std::string TypedBat<std::string>::GetString(int64_t i) const {
  return at(i);
}

template <>
int64_t TypedBat<int64_t>::ByteSize() const {
  return size() * static_cast<int64_t>(sizeof(int64_t));
}
template <>
int64_t TypedBat<double>::ByteSize() const {
  return size() * static_cast<int64_t>(sizeof(double));
}
template <>
int64_t TypedBat<std::string>::ByteSize() const {
  int64_t bytes = 0;
  for (const auto& s : data()) {
    bytes += static_cast<int64_t>(sizeof(std::string) + s.capacity());
  }
  return bytes;
}

template class TypedBat<int64_t>;
template class TypedBat<double>;
template class TypedBat<std::string>;

std::string DoubleSliceBat::GetString(int64_t i) const {
  return FormatDouble(data_[i]);
}

BatPtr SliceBat(const BatPtr& b, int64_t offset, int64_t count) {
  RMA_CHECK(b != nullptr);
  RMA_CHECK(offset >= 0 && count >= 0 && offset + count <= b->size());
  // A zero-copy view captures a raw pointer, so the source must keep that
  // pointer valid for the view's lifetime. Paged columns do not (their
  // frame moves across evict/reload): they take the copying fallback.
  if (const double* d = b->StableData() ? b->ContiguousDoubleData() : nullptr) {
    // Re-slicing a slice composes offsets against the original owner so view
    // chains never deepen.
    if (const auto* view = dynamic_cast<const DoubleSliceBat*>(b.get())) {
      return std::make_shared<DoubleSliceBat>(view->owner(), d + offset, count);
    }
    return std::make_shared<DoubleSliceBat>(b, d + offset, count);
  }
  std::vector<int64_t> idx(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) idx[static_cast<size_t>(i)] = offset + i;
  return b->Take(idx);
}

BatPtr MakeInt64Bat(std::vector<int64_t> v) {
  return std::make_shared<Int64Bat>(std::move(v));
}
BatPtr MakeDoubleBat(std::vector<double> v) {
  return std::make_shared<DoubleBat>(std::move(v));
}
BatPtr MakeStringBat(std::vector<std::string> v) {
  return std::make_shared<StringBat>(std::move(v));
}

BatPtr MakeConstantBat(const Value& v, int64_t n) {
  switch (ValueType(v)) {
    case DataType::kInt64:
      return MakeInt64Bat(
          std::vector<int64_t>(static_cast<size_t>(n), std::get<int64_t>(v)));
    case DataType::kDouble:
      return MakeDoubleBat(
          std::vector<double>(static_cast<size_t>(n), std::get<double>(v)));
    case DataType::kString:
      return MakeStringBat(std::vector<std::string>(static_cast<size_t>(n),
                                                    std::get<std::string>(v)));
  }
  return nullptr;
}

std::vector<double> ToDoubleVector(const Bat& bat) {
  const int64_t n = bat.size();
  // Fast paths for dense typed columns (including slice views); sparse and
  // other representations go through the virtual accessor.
  if (const double* d = bat.ContiguousDoubleData()) {
    return std::vector<double>(d, d + n);
  }
  std::vector<double> out(static_cast<size_t>(n));
  if (const auto* i64 = dynamic_cast<const Int64Bat*>(&bat)) {
    for (int64_t i = 0; i < n; ++i) {
      out[i] = static_cast<double>(i64->at(i));
    }
    return out;
  }
  for (int64_t i = 0; i < n; ++i) out[i] = bat.GetDouble(i);
  return out;
}

std::vector<double> GatherDoubleVector(const Bat& bat,
                                       const std::vector<int64_t>& perm) {
  std::vector<double> out(perm.size());
  if (const double* v = bat.ContiguousDoubleData()) {
    for (size_t i = 0; i < perm.size(); ++i) out[i] = v[perm[i]];
    return out;
  }
  if (const auto* i64 = dynamic_cast<const Int64Bat*>(&bat)) {
    const auto& v = i64->data();
    for (size_t i = 0; i < perm.size(); ++i) {
      out[i] = static_cast<double>(v[perm[i]]);
    }
    return out;
  }
  for (size_t i = 0; i < perm.size(); ++i) out[i] = bat.GetDouble(perm[i]);
  return out;
}

}  // namespace rma
