#include "storage/schema.h"

#include <unordered_set>

#include "util/string_util.h"

namespace rma {

Result<Schema> Schema::Make(std::vector<Attribute> attrs) {
  std::unordered_set<std::string> seen;
  for (const auto& a : attrs) {
    if (!seen.insert(a.name).second) {
      return Status::Invalid("duplicate attribute name: " + a.name);
    }
  }
  return Schema(std::move(attrs));
}

Result<int> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i].name == name) return static_cast<int>(i);
  }
  return Status::KeyError("unknown attribute: " + name);
}

Result<int> Schema::IndexOfIgnoreCase(const std::string& name) const {
  int found = -1;
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (EqualsIgnoreCase(attrs_[i].name, name)) {
      if (found >= 0) {
        return Status::KeyError("ambiguous attribute: " + name);
      }
      found = static_cast<int>(i);
    }
  }
  if (found < 0) return Status::KeyError("unknown attribute: " + name);
  return found;
}

std::vector<std::string> Schema::Names() const {
  std::vector<std::string> out;
  out.reserve(attrs_.size());
  for (const auto& a : attrs_) out.push_back(a.name);
  return out;
}

Result<Schema> Schema::Concat(const Schema& a, const Schema& b) {
  std::vector<Attribute> attrs = a.attrs_;
  attrs.insert(attrs.end(), b.attrs_.begin(), b.attrs_.end());
  return Make(std::move(attrs));
}

Schema Schema::Select(const std::vector<int>& indices) const {
  std::vector<Attribute> attrs;
  attrs.reserve(indices.size());
  for (int i : indices) attrs.push_back(attrs_[static_cast<size_t>(i)]);
  return Schema(std::move(attrs));
}

Result<std::vector<int>> Schema::IndicesOf(
    const std::vector<std::string>& names) const {
  std::vector<int> out;
  out.reserve(names.size());
  for (const auto& n : names) {
    RMA_ASSIGN_OR_RETURN(int idx, IndexOf(n));
    out.push_back(idx);
  }
  return out;
}

std::vector<int> Schema::ComplementOf(const std::vector<int>& indices) const {
  std::vector<bool> used(attrs_.size(), false);
  for (int i : indices) used[static_cast<size_t>(i)] = true;
  std::vector<int> out;
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (!used[i]) out.push_back(static_cast<int>(i));
  }
  return out;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += attrs_[i].name;
    out += ":";
    out += DataTypeName(attrs_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace rma
