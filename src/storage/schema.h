#ifndef RMA_STORAGE_SCHEMA_H_
#define RMA_STORAGE_SCHEMA_H_

#include <string>
#include <vector>

#include "storage/data_type.h"
#include "util/result.h"

namespace rma {

/// A named, typed attribute of a relation schema.
struct Attribute {
  std::string name;
  DataType type;

  bool operator==(const Attribute& o) const {
    return name == o.name && type == o.type;
  }
};

/// A finite ordered list of attributes (Sec. 3.1). Attribute names within a
/// schema are unique.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Attribute> attrs) : attrs_(std::move(attrs)) {}

  /// Builds a schema, rejecting duplicate attribute names.
  static Result<Schema> Make(std::vector<Attribute> attrs);

  int num_attributes() const { return static_cast<int>(attrs_.size()); }
  const Attribute& attribute(int i) const { return attrs_[static_cast<size_t>(i)]; }
  const std::vector<Attribute>& attributes() const { return attrs_; }

  /// Position of `name`, or KeyError. Exact (case-sensitive) match.
  Result<int> IndexOf(const std::string& name) const;

  /// Position of `name` ignoring ASCII case (SQL identifier resolution),
  /// or KeyError. Ambiguity (two case-insensitive matches) is an error.
  Result<int> IndexOfIgnoreCase(const std::string& name) const;

  bool Contains(const std::string& name) const { return IndexOf(name).ok(); }

  /// All attribute names, in order.
  std::vector<std::string> Names() const;

  /// Concatenation (U ◦ V); duplicate names are rejected.
  static Result<Schema> Concat(const Schema& a, const Schema& b);

  /// Sub-schema at `indices`, in that order.
  Schema Select(const std::vector<int>& indices) const;

  /// Positions of `names` in this schema (KeyError on a miss).
  Result<std::vector<int>> IndicesOf(const std::vector<std::string>& names) const;

  /// Complement of `indices`: positions not listed, in schema order.
  std::vector<int> ComplementOf(const std::vector<int>& indices) const;

  bool operator==(const Schema& o) const { return attrs_ == o.attrs_; }

  std::string ToString() const;

 private:
  std::vector<Attribute> attrs_;
};

}  // namespace rma

#endif  // RMA_STORAGE_SCHEMA_H_
