#include "storage/buffer_pool.h"

#include <cstring>
#include <vector>

#include "util/logging.h"

namespace rma {

struct BufferPool::Frame {
  std::shared_ptr<Pager> pager;
  uint64_t first_page = 0;
  uint64_t n_pages = 0;
  int64_t bytes = 0;        // logical payload bytes
  int64_t frame_bytes = 0;  // allocated bytes (whole pages)
  std::unique_ptr<char[]> data;
  int pins = 0;
  bool dirty = false;
  std::list<Frame*>::iterator lru_it;
  bool in_lru = false;
};

PinnedExtent::~PinnedExtent() { Release(); }

PinnedExtent::PinnedExtent(PinnedExtent&& other) noexcept
    : pool_(other.pool_), frame_(other.frame_) {
  other.pool_ = nullptr;
  other.frame_ = nullptr;
}

PinnedExtent& PinnedExtent::operator=(PinnedExtent&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    other.pool_ = nullptr;
    other.frame_ = nullptr;
  }
  return *this;
}

const char* PinnedExtent::data() const {
  return frame_ == nullptr
             ? nullptr
             : static_cast<BufferPool::Frame*>(frame_)->data.get();
}

char* PinnedExtent::mutable_data() const {
  return frame_ == nullptr
             ? nullptr
             : static_cast<BufferPool::Frame*>(frame_)->data.get();
}

int64_t PinnedExtent::bytes() const {
  return frame_ == nullptr ? 0
                           : static_cast<BufferPool::Frame*>(frame_)->bytes;
}

void PinnedExtent::MarkDirty() {
  if (frame_ != nullptr) {
    pool_->MarkDirty(static_cast<BufferPool::Frame*>(frame_));
  }
}

void PinnedExtent::Release() {
  if (frame_ != nullptr) {
    pool_->Unpin(static_cast<BufferPool::Frame*>(frame_));
    pool_ = nullptr;
    frame_ = nullptr;
  }
}

BufferPool::BufferPool(int64_t capacity_bytes)
    : capacity_bytes_(capacity_bytes) {}

BufferPool::~BufferPool() {
  MutexLock lock(mu_);
  // Dirty frames at teardown were never committed by a Flush; dropping them
  // is correct (the manifest never referenced the extent). Pins must be
  // gone: a live PinnedExtent outliving its pool is a caller bug.
  for (const auto& [key, f] : frames_) {
    (void)key;
    RMA_CHECK(f->pins == 0 && "BufferPool destroyed with live pins");
  }
}

Result<PinnedExtent> BufferPool::Pin(const std::shared_ptr<Pager>& pager,
                                     uint64_t first_page, uint64_t n_pages,
                                     int64_t bytes) {
  RMA_CHECK(pager != nullptr);
  MutexLock lock(mu_);
  const FrameKey key{pager->id(), first_page};
  auto it = frames_.find(key);
  if (it != frames_.end()) {
    Frame* f = it->second.get();
    if (f->in_lru) {
      lru_.erase(f->lru_it);
      f->in_lru = false;
    }
    ++f->pins;
    ++stats_.hits;
    return PinnedExtent(this, f);
  }

  ++stats_.misses;
  const int64_t payload = pager->payload_bytes();
  const int64_t frame_bytes = static_cast<int64_t>(n_pages) * payload;
  RMA_CHECK(bytes <= frame_bytes);
  RMA_RETURN_NOT_OK(EvictForLocked(frame_bytes));

  auto frame = std::make_unique<Frame>();
  frame->pager = pager;
  frame->first_page = first_page;
  frame->n_pages = n_pages;
  frame->bytes = bytes;
  frame->frame_bytes = frame_bytes;
  frame->data = std::make_unique<char[]>(static_cast<size_t>(frame_bytes));
  for (uint64_t i = 0; i < n_pages; ++i) {
    RMA_RETURN_NOT_OK(pager->ReadPage(
        first_page + i, frame->data.get() + static_cast<int64_t>(i) * payload));
  }
  frame->pins = 1;
  Frame* f = frame.get();
  frames_.emplace(key, std::move(frame));
  stats_.resident_bytes += frame_bytes;
  return PinnedExtent(this, f);
}

Result<PinnedExtent> BufferPool::Create(const std::shared_ptr<Pager>& pager,
                                        uint64_t first_page, uint64_t n_pages,
                                        int64_t bytes) {
  RMA_CHECK(pager != nullptr);
  MutexLock lock(mu_);
  const FrameKey key{pager->id(), first_page};
  RMA_CHECK(frames_.find(key) == frames_.end() &&
            "Create over an already-resident extent");
  const int64_t payload = pager->payload_bytes();
  const int64_t frame_bytes = static_cast<int64_t>(n_pages) * payload;
  RMA_CHECK(bytes <= frame_bytes);
  RMA_RETURN_NOT_OK(EvictForLocked(frame_bytes));

  auto frame = std::make_unique<Frame>();
  frame->pager = pager;
  frame->first_page = first_page;
  frame->n_pages = n_pages;
  frame->bytes = bytes;
  frame->frame_bytes = frame_bytes;
  frame->data = std::make_unique<char[]>(static_cast<size_t>(frame_bytes));
  // Zero the page-padding tail so checksummed pages never carry
  // uninitialized heap bytes to disk.
  std::memset(frame->data.get(), 0, static_cast<size_t>(frame_bytes));
  frame->pins = 1;
  frame->dirty = true;
  Frame* f = frame.get();
  frames_.emplace(key, std::move(frame));
  stats_.resident_bytes += frame_bytes;
  return PinnedExtent(this, f);
}

Status BufferPool::Flush(const std::shared_ptr<Pager>& pager) {
  RMA_CHECK(pager != nullptr);
  {
    MutexLock lock(mu_);
    for (auto& [key, f] : frames_) {
      if (key.first != pager->id() || !f->dirty) continue;
      RMA_RETURN_NOT_OK(WritebackLocked(f.get()));
    }
  }
  return pager->Sync();
}

void BufferPool::Forget(uint64_t pager_id) {
  MutexLock lock(mu_);
  for (auto it = frames_.lower_bound({pager_id, 0});
       it != frames_.end() && it->first.first == pager_id;) {
    Frame* f = it->second.get();
    if (f->pins > 0) {
      ++it;
      continue;
    }
    if (f->in_lru) lru_.erase(f->lru_it);
    stats_.resident_bytes -= f->frame_bytes;
    it = frames_.erase(it);
  }
}

BufferPoolStats BufferPool::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

void BufferPool::Unpin(Frame* f) {
  MutexLock lock(mu_);
  RMA_CHECK(f->pins > 0);
  if (--f->pins == 0) {
    f->lru_it = lru_.insert(lru_.end(), f);
    f->in_lru = true;
  }
}

void BufferPool::MarkDirty(Frame* f) {
  MutexLock lock(mu_);
  f->dirty = true;
}

Status BufferPool::EvictForLocked(int64_t need) {
  while (stats_.resident_bytes + need > capacity_bytes_ && !lru_.empty()) {
    Frame* victim = lru_.front();
    if (victim->dirty) RMA_RETURN_NOT_OK(WritebackLocked(victim));
    lru_.pop_front();
    stats_.resident_bytes -= victim->frame_bytes;
    ++stats_.evictions;
    frames_.erase({victim->pager->id(), victim->first_page});
  }
  if (stats_.resident_bytes + need > capacity_bytes_) ++stats_.overcommits;
  return Status::OK();
}

Status BufferPool::WritebackLocked(Frame* f) {
  const int64_t payload = f->pager->payload_bytes();
  for (uint64_t i = 0; i < f->n_pages; ++i) {
    RMA_RETURN_NOT_OK(f->pager->WritePage(
        f->first_page + i, f->data.get() + static_cast<int64_t>(i) * payload));
  }
  f->dirty = false;
  ++stats_.writebacks;
  return Status::OK();
}

}  // namespace rma
