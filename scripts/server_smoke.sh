#!/usr/bin/env bash
# End-to-end smoke of the server front-end: starts rma_server on an
# ephemeral port, drives the Fig. 13 and Fig. 15 workloads through
# rma_client, asserts the streamed row counts and plan-cache reuse, checks
# statement-level error isolation, then SIGTERMs the server and asserts the
# drain summary. CI runs this against the Release build
# (.github/workflows/ci.yml, job server-smoke); locally:
#
#   scripts/server_smoke.sh [build-dir]    # default: build
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
SERVER="${BUILD}/tools/rma_server"
CLIENT="${BUILD}/tools/rma_client"
ROWS=4000

if [[ ! -x "${SERVER}" || ! -x "${CLIENT}" ]]; then
  echo "error: ${SERVER} / ${CLIENT} not built (cmake --build ${BUILD})" >&2
  exit 2
fi

LOG="$(mktemp)"
"${SERVER}" --port 0 --rows "${ROWS}" --cols 4 > "${LOG}" 2>&1 &
SERVER_PID=$!
cleanup() {
  kill -9 "${SERVER_PID}" 2>/dev/null || true
  rm -f "${LOG}"
}
trap cleanup EXIT

# The server prints "rma_server listening on HOST:PORT" once bound.
PORT=""
for _ in $(seq 100); do
  PORT="$(sed -n 's/^rma_server listening on .*:\([0-9][0-9]*\)$/\1/p' "${LOG}")"
  [[ -n "${PORT}" ]] && break
  sleep 0.1
done
if [[ -z "${PORT}" ]]; then
  echo "error: server never printed its listening line" >&2
  cat "${LOG}" >&2
  exit 1
fi
echo "server up on port ${PORT}"

echo "--- fig13 workload (2 reps) ---"
FIG13="$("${CLIENT}" --port "${PORT}" --workload fig13 --reps 2 --counts)"
echo "${FIG13}"
# Per rep: MMU(TRA(m),m) -> 4 rows, CPD(m,m) -> 4 rows, QQR(m) -> ROWS rows.
[[ "$(grep -c '^rows=4 ' <<<"${FIG13}")" -eq 4 ]] \
  || { echo "FAIL: expected 4 Gram-matrix results of 4 rows" >&2; exit 1; }
[[ "$(grep -c "^rows=${ROWS} " <<<"${FIG13}")" -eq 2 ]] \
  || { echo "FAIL: expected 2 QQR results of ${ROWS} rows" >&2; exit 1; }
# The second rep replays identical statements: the shared plan cache must hit.
grep -q "^rows=${ROWS} .*cache=hit" <<<"${FIG13}" \
  || { echo "FAIL: second QQR rep missed the plan cache" >&2; exit 1; }

echo "--- fig15 workload (prepared) ---"
FIG15="$("${CLIENT}" --port "${PORT}" --workload fig15 --counts --prepare)"
echo "${FIG15}"
grep -q '^rows=4 ' <<<"${FIG15}" \
  || { echo "FAIL: OLS result should have one row per regressor" >&2; exit 1; }

echo "--- statement error isolation ---"
# A bad statement must answer with an error yet leave the session usable:
# the client exits non-zero (it saw a failure) but still runs the second
# statement on the same connection.
set +e
ISOLATION="$("${CLIENT}" --port "${PORT}" \
  -e "SELECT * FROM no_such_table;" -e "SELECT * FROM u;" --counts 2>&1)"
ISOLATION_EXIT=$?
set -e
echo "${ISOLATION}"
[[ "${ISOLATION_EXIT}" -ne 0 ]] \
  || { echo "FAIL: client should report the failed statement" >&2; exit 1; }
grep -q 'unknown table' <<<"${ISOLATION}" \
  || { echo "FAIL: server error did not reach the client" >&2; exit 1; }
grep -q '^rows=3 ' <<<"${ISOLATION}" \
  || { echo "FAIL: session did not survive the failed statement" >&2; exit 1; }

echo "--- graceful shutdown ---"
kill -TERM "${SERVER_PID}"
for _ in $(seq 100); do
  kill -0 "${SERVER_PID}" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "${SERVER_PID}" 2>/dev/null; then
  echo "FAIL: server did not exit after SIGTERM" >&2
  exit 1
fi
wait "${SERVER_PID}" 2>/dev/null || true
grep -q 'statements: .* executed' "${LOG}" \
  || { echo "FAIL: no drain summary in server log" >&2; cat "${LOG}" >&2; exit 1; }
grep -q 'sessions: [0-9]* accepted' "${LOG}" \
  || { echo "FAIL: no session summary in server log" >&2; exit 1; }

echo "server smoke: OK"
