#!/usr/bin/env bash
# clang-format check restricted to touched files, so adopting .clang-format
# never forces a whole-tree reformat: only lines you already changed must
# conform.
#
# Usage: scripts/check_format.sh [base-ref]
#   base-ref   Diff base (default: merge-base with origin/main, falling back
#              to main, falling back to HEAD~1). CI passes the PR base SHA.
#
# Checks every added/modified *.h/*.cc/*.cpp relative to the base with
# `clang-format --dry-run -Werror`. Exits 0 with a notice when clang-format
# is not installed (the GCC-only dev container) — CI installs it, so the
# gate still holds where it matters.
set -euo pipefail

cd "$(dirname "$0")/.."

if ! command -v clang-format >/dev/null 2>&1; then
  echo "check_format: SKIPPED (clang-format not installed; CI enforces this)"
  exit 0
fi

base="${1:-}"
if [[ -z "${base}" ]]; then
  for candidate in origin/main main 'HEAD~1'; do
    if git rev-parse --verify --quiet "${candidate}" >/dev/null; then
      base="$(git merge-base HEAD "${candidate}")"
      break
    fi
  done
fi
if [[ -z "${base}" ]]; then
  echo "check_format: no diff base found; pass one explicitly" >&2
  exit 2
fi

mapfile -t files < <(git diff --name-only --diff-filter=ACMR "${base}" -- \
  '*.h' '*.cc' '*.cpp')
if [[ ${#files[@]} -eq 0 ]]; then
  echo "check_format: no C++ files touched relative to ${base}"
  exit 0
fi

echo "check_format: checking ${#files[@]} file(s) against ${base}"
clang-format --dry-run -Werror "${files[@]}"
echo "check_format: OK"
