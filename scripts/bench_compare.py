#!/usr/bin/env python3
"""Diff two BENCH_*.json files (bench_common's BenchJson format) and fail on
perf regressions beyond a noise threshold.

Usage:
  bench_compare.py BASELINE.json CURRENT.json [--threshold 0.30]
                   [--min-ns 100000] [--absolute]

Both files hold {"bench": ..., "scale": ..., "entries": [{"name", "ns", ...}]}.
Entries are matched by name. By default the comparison is *speed-normalized*:
the median current/baseline ratio across all matched entries is treated as
the machine-speed factor (CI runners differ from the machine that produced
the checked-in baseline), and an entry only counts as a regression when its
ratio exceeds the median by more than the threshold — i.e. it got slower
*relative to everything else*. --absolute compares raw ratios instead (for
same-machine A/B runs).

Entries whose baseline time is under --min-ns are skipped: timer granularity
and allocator noise dominate there (sub-100µs rows swing tens of percent
run-to-run even best-of-N). A scale mismatch between the two files is
an error (ns at different problem sizes are not comparable).

Entries may carry a cache "regime" ("l2"/"l3"/"dram") and a "shards" count
(the shard count the recorded plan executed with; 0 = not a sharded
measurement). Both are shown in the diff table, and a shard-count change
between baseline and current is flagged inline — a plan that stopped (or
started) sharding explains a timing shift better than the ratio alone.

Exit status: 0 = no regressions, 1 = regressions found, 2 = usage/format
error.
"""

import argparse
import json
import statistics
import sys


def load_entries(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_compare: cannot read {path}: {e}")
    if "entries" not in doc or not isinstance(doc["entries"], list):
        sys.exit(f"bench_compare: {path}: no entries array")
    entries = {}
    meta = {}
    for e in doc["entries"]:
        name, ns = e.get("name"), e.get("ns")
        if not isinstance(name, str) or not isinstance(ns, (int, float)):
            sys.exit(f"bench_compare: {path}: malformed entry {e!r}")
        entries[name] = float(ns)
        meta[name] = (e.get("regime", ""), int(e.get("shards", 0) or 0))
    return doc.get("scale", 1.0), entries, meta


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.30,
                    help="max tolerated slowdown, e.g. 0.30 = +30%% "
                         "(default: %(default)s)")
    ap.add_argument("--min-ns", type=float, default=100000,
                    help="skip entries whose baseline is below this many ns "
                         "(default: %(default)s)")
    ap.add_argument("--absolute", action="store_true",
                    help="compare raw ratios; skip median speed "
                         "normalization")
    args = ap.parse_args()

    base_scale, base, base_meta = load_entries(args.baseline)
    cur_scale, cur, cur_meta = load_entries(args.current)
    if base_scale != cur_scale:
        sys.exit(f"bench_compare: scale mismatch: baseline ran at "
                 f"{base_scale}, current at {cur_scale} — regenerate the "
                 f"baseline at the comparison scale")

    matched = sorted(set(base) & set(cur))
    for name in sorted(set(base) - set(cur)):
        print(f"  [missing] {name}: in baseline only (renamed or removed?)")
    for name in sorted(set(cur) - set(base)):
        print(f"  [new]     {name}: not in baseline (skipped)")
    if not matched:
        sys.exit("bench_compare: no common entries to compare")

    usable = [n for n in matched if base[n] >= args.min_ns]
    skipped = len(matched) - len(usable)
    if not usable:
        sys.exit("bench_compare: every common entry is under --min-ns "
                 f"({args.min_ns:.0f}); nothing comparable")

    ratios = {n: cur[n] / base[n] for n in usable}
    speed = 1.0 if args.absolute else statistics.median(ratios.values())

    regressions, improvements = [], []
    print(f"{'benchmark':<40} {'baseline':>12} {'current':>12} "
          f"{'norm ratio':>10} {'regime':>6} {'shards':>6}")
    for name in usable:
        norm = ratios[name] / speed
        regime, shards = cur_meta.get(name, ("", 0))
        base_shards = base_meta.get(name, ("", 0))[1]
        shards_cell = "-" if shards == 0 and base_shards == 0 else str(shards)
        flag = ""
        if shards != base_shards:
            # The plan changed shape, not just speed.
            flag = f"  [shards {base_shards}->{shards}]"
        if norm > 1.0 + args.threshold:
            regressions.append((name, norm))
            flag += "  << REGRESSION"
        elif norm < 1.0 - args.threshold:
            improvements.append((name, norm))
            flag += "  (improved)"
        print(f"{name:<40} {base[name]:>10.0f}ns {cur[name]:>10.0f}ns "
              f"{norm:>9.2f}x {regime:>6} {shards_cell:>6}{flag}")

    print(f"\nmachine-speed factor (median ratio): {speed:.2f}x"
          f"{' (absolute mode)' if args.absolute else ''}")
    if skipped:
        print(f"skipped {skipped} entr{'y' if skipped == 1 else 'ies'} under "
              f"the {args.min_ns:.0f}ns noise floor")
    if improvements:
        print(f"{len(improvements)} improved beyond the threshold")
    if regressions:
        print(f"\nFAIL: {len(regressions)} regression(s) beyond "
              f"+{args.threshold:.0%}:")
        for name, norm in sorted(regressions, key=lambda r: -r[1]):
            print(f"  {name}: {norm:.2f}x the expected time")
        return 1
    print("OK: no regressions beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
