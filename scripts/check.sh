#!/usr/bin/env bash
# Local tier-1 verify: configure + build + ctest in Debug and Release with
# warnings-as-errors on src/, plus an AddressSanitizer pass over the test
# suite (the query cache's shared-ownership paths are leak/UAF-checked), a
# ThreadSanitizer pass (the concurrent stage scheduler, batched statement
# execution, and the shared query cache are race-checked, including the
# concurrency stress test), and a UBSan pass (the SIMD layer's tail-pointer
# arithmetic and the piecewise cost model) — the same matrix CI runs. The
# ASan and UBSan suites run twice: vectorized (default dispatch) and with
# RMA_NO_SIMD=1, so both sides of every kernel stay sanitizer-covered.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

for config in Debug Release; do
  build_dir="build-check-${config,,}"
  echo "=== ${config} ==="
  cmake -B "${build_dir}" -S . \
    -DCMAKE_BUILD_TYPE="${config}" \
    -DRMA_WERROR=ON
  cmake --build "${build_dir}" -j "${JOBS}"
  (cd "${build_dir}" && ctest --output-on-failure -j "${JOBS}")
done

echo "=== AddressSanitizer ==="
cmake -B build-check-asan -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DRMA_WERROR=ON \
  -DRMA_SANITIZE=address
cmake --build build-check-asan -j "${JOBS}"
(cd build-check-asan && ctest --output-on-failure -j "${JOBS}")
(cd build-check-asan && \
  RMA_NO_SIMD=1 ctest --output-on-failure -j "${JOBS}")

echo "=== ThreadSanitizer ==="
cmake -B build-check-tsan -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DRMA_WERROR=ON \
  -DRMA_SANITIZE=thread
cmake --build build-check-tsan -j "${JOBS}"
(cd build-check-tsan && \
  TSAN_OPTIONS="halt_on_error=1" ctest --output-on-failure -j "${JOBS}")

echo "=== UndefinedBehaviorSanitizer ==="
cmake -B build-check-ubsan -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DRMA_WERROR=ON \
  -DRMA_SANITIZE=undefined
cmake --build build-check-ubsan -j "${JOBS}"
(cd build-check-ubsan && \
  UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  ctest --output-on-failure -j "${JOBS}")
(cd build-check-ubsan && \
  RMA_NO_SIMD=1 UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  ctest --output-on-failure -j "${JOBS}")

echo "All checks passed."
