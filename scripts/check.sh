#!/usr/bin/env bash
# Local tier-1 verify: configure + build + ctest in Debug and Release with
# warnings-as-errors on src/, plus an AddressSanitizer pass over the test
# suite (the query cache's shared-ownership paths are leak/UAF-checked) and
# a ThreadSanitizer pass (the concurrent stage scheduler, batched statement
# execution, and the shared query cache are race-checked, including the
# concurrency stress test) — the same matrix CI runs.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

for config in Debug Release; do
  build_dir="build-check-${config,,}"
  echo "=== ${config} ==="
  cmake -B "${build_dir}" -S . \
    -DCMAKE_BUILD_TYPE="${config}" \
    -DRMA_WERROR=ON
  cmake --build "${build_dir}" -j "${JOBS}"
  (cd "${build_dir}" && ctest --output-on-failure -j "${JOBS}")
done

echo "=== AddressSanitizer ==="
cmake -B build-check-asan -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DRMA_WERROR=ON \
  -DRMA_SANITIZE=address
cmake --build build-check-asan -j "${JOBS}"
(cd build-check-asan && ctest --output-on-failure -j "${JOBS}")

echo "=== ThreadSanitizer ==="
cmake -B build-check-tsan -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DRMA_WERROR=ON \
  -DRMA_SANITIZE=thread
cmake --build build-check-tsan -j "${JOBS}"
(cd build-check-tsan && \
  TSAN_OPTIONS="halt_on_error=1" ctest --output-on-failure -j "${JOBS}")

echo "All checks passed."
