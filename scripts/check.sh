#!/usr/bin/env bash
# Local tier-1 verify. Modes:
#
#   scripts/check.sh            # default: the sanitizer/Werror build matrix
#   scripts/check.sh matrix     # same, explicitly
#   scripts/check.sh clang      # clang build with -Wthread-safety -Werror
#   scripts/check.sh lint       # clang-tidy over the compilation database
#   scripts/check.sh format     # clang-format on touched files
#   scripts/check.sh all        # everything above
#
# The matrix: configure + build + ctest in Debug and Release with
# warnings-as-errors on src/, plus an AddressSanitizer pass over the test
# suite (the query cache's shared-ownership paths are leak/UAF-checked), a
# ThreadSanitizer pass (the concurrent stage scheduler, batched statement
# execution, and the shared query cache are race-checked, including the
# concurrency stress test), and a UBSan pass (the SIMD layer's tail-pointer
# arithmetic and the piecewise cost model) — the same matrix CI runs. The
# ASan and UBSan suites run twice: vectorized (default dispatch) and with
# RMA_NO_SIMD=1, so both sides of every kernel stay sanitizer-covered.
#
# The clang mode is where the thread-safety annotations (RMA_GUARDED_BY,
# RMA_REQUIRES — util/thread_annotations.h) actually analyze: GCC compiles
# them as no-ops. clang/lint/format degrade to a loud SKIP when the LLVM
# tools are not installed locally; CI installs them, so the gates still
# bind where it matters.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
MODE="${1:-matrix}"
# Optional diff base forwarded to the format check (CI passes the PR base).
FORMAT_BASE="${2:-}"

run_matrix() {
  for config in Debug Release; do
    build_dir="build-check-${config,,}"
    echo "=== ${config} ==="
    cmake -B "${build_dir}" -S . \
      -DCMAKE_BUILD_TYPE="${config}" \
      -DRMA_WERROR=ON
    cmake --build "${build_dir}" -j "${JOBS}"
    (cd "${build_dir}" && ctest --output-on-failure -j "${JOBS}")
  done

  echo "=== server smoke (Release) ==="
  scripts/server_smoke.sh build-check-release

  echo "=== storage smoke (Release) ==="
  scripts/storage_smoke.sh build-check-release

  echo "=== AddressSanitizer ==="
  cmake -B build-check-asan -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DRMA_WERROR=ON \
    -DRMA_SANITIZE=address
  cmake --build build-check-asan -j "${JOBS}"
  (cd build-check-asan && ctest --output-on-failure -j "${JOBS}")
  (cd build-check-asan && \
    RMA_NO_SIMD=1 ctest --output-on-failure -j "${JOBS}")

  echo "=== ThreadSanitizer ==="
  cmake -B build-check-tsan -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DRMA_WERROR=ON \
    -DRMA_SANITIZE=thread
  cmake --build build-check-tsan -j "${JOBS}"
  (cd build-check-tsan && \
    TSAN_OPTIONS="halt_on_error=1" ctest --output-on-failure -j "${JOBS}")

  echo "=== UndefinedBehaviorSanitizer ==="
  cmake -B build-check-ubsan -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DRMA_WERROR=ON \
    -DRMA_SANITIZE=undefined
  cmake --build build-check-ubsan -j "${JOBS}"
  (cd build-check-ubsan && \
    UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    ctest --output-on-failure -j "${JOBS}")
  (cd build-check-ubsan && \
    RMA_NO_SIMD=1 UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    ctest --output-on-failure -j "${JOBS}")
}

run_clang() {
  echo "=== clang -Wthread-safety ==="
  if ! command -v clang++ >/dev/null 2>&1; then
    echo "SKIPPED: clang++ not installed (CI runs this gate)"
    return 0
  fi
  # RMA_WERROR=ON promotes the thread-safety findings (added for clang by
  # CMakeLists.txt) to errors; the suite run also exercises the
  # negative-compilation test with the analysis genuinely firing.
  cmake -B build-check-clang -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_COMPILER=clang++ \
    -DRMA_WERROR=ON
  cmake --build build-check-clang -j "${JOBS}"
  (cd build-check-clang && ctest --output-on-failure -j "${JOBS}")
}

run_lint() {
  echo "=== clang-tidy ==="
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "SKIPPED: clang-tidy not installed (CI runs this gate)"
    return 0
  fi
  # Any configured build emits compile_commands.json
  # (CMAKE_EXPORT_COMPILE_COMMANDS is always on); configure a dedicated dir
  # so lint does not race a concurrent build's database rewrite.
  cmake -B build-check-lint -S . -DCMAKE_BUILD_TYPE=Debug
  # The negative-compilation results header is generated at configure time
  # but tests/ headers referenced from the database must exist; no build
  # needed beyond that.
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -p build-check-lint -quiet "src/.*\.cc$"
  else
    git ls-files 'src/*.cc' | xargs -P "${JOBS}" -n 1 \
      clang-tidy -p build-check-lint --quiet
  fi
  echo "clang-tidy: OK"
}

run_format() {
  echo "=== clang-format (touched files) ==="
  scripts/check_format.sh "${FORMAT_BASE}"
  echo "=== markdown cross-references ==="
  python3 scripts/check_doc_links.py
}

case "${MODE}" in
  matrix) run_matrix ;;
  clang) run_clang ;;
  lint) run_lint ;;
  format) run_format ;;
  all)
    run_matrix
    run_clang
    run_lint
    run_format
    ;;
  *)
    echo "usage: scripts/check.sh [matrix|clang|lint|format|all]" >&2
    exit 2
    ;;
esac

echo "All checks passed."
