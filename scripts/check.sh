#!/usr/bin/env bash
# Local tier-1 verify: configure + build + ctest in Debug and Release with
# warnings-as-errors on src/ (the same matrix CI runs).
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

for config in Debug Release; do
  build_dir="build-check-${config,,}"
  echo "=== ${config} ==="
  cmake -B "${build_dir}" -S . \
    -DCMAKE_BUILD_TYPE="${config}" \
    -DRMA_WERROR=ON
  cmake --build "${build_dir}" -j "${JOBS}"
  (cd "${build_dir}" && ctest --output-on-failure -j "${JOBS}")
done

echo "All checks passed."
