#!/usr/bin/env bash
# Crash-recovery smoke of the durable storage tier: bulk-load a table,
# SIGKILL a second load mid-save (a --sleep-per-column hook widens the
# window between column writes), reopen the store, and assert that the
# first table still verifies with an identical content fingerprint and
# that the torn save either fully committed or is entirely absent — never
# half-visible. Finishes with a CSV round trip through the same store.
# CI runs this against the Release build (.github/workflows/ci.yml, job
# storage-smoke); locally:
#
#   scripts/storage_smoke.sh [build-dir]    # default: build
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
LOAD="${BUILD}/tools/rma_load"

if [[ ! -x "${LOAD}" ]]; then
  echo "error: ${LOAD} not built (cmake --build ${BUILD})" >&2
  exit 2
fi

DIR="$(mktemp -d)"
cleanup() { rm -rf "${DIR}"; }
trap cleanup EXIT

echo "--- initial load ---"
"${LOAD}" --data-dir "${DIR}" --synthetic base --rows 20000 --cols 4
BEFORE="$("${LOAD}" --data-dir "${DIR}" --verify base)"
echo "${BEFORE}"

echo "--- SIGKILL mid-save ---"
# The victim load sleeps between column writes, giving the kill a window
# while some of its files are written and the manifest is not yet swung.
"${LOAD}" --data-dir "${DIR}" --synthetic victim --rows 20000 --cols 8 \
  --sleep-per-column 200 &
VICTIM_PID=$!
sleep 0.5
kill -9 "${VICTIM_PID}" 2>/dev/null || true
wait "${VICTIM_PID}" 2>/dev/null || true

echo "--- recovery ---"
CATALOG="$("${LOAD}" --data-dir "${DIR}" --list)"
echo "${CATALOG}"
grep -q '^base: 20000 rows' <<<"${CATALOG}" \
  || { echo "FAIL: pre-existing table lost after crash" >&2; exit 1; }
# Atomicity: the victim is either fully there (kill raced the commit) or
# entirely absent. Half a table must never be visible.
if grep -q '^victim:' <<<"${CATALOG}"; then
  grep -q '^victim: 20000 rows, 9 cols$' <<<"${CATALOG}" \
    || { echo "FAIL: victim table is half-visible" >&2; exit 1; }
  echo "victim committed before the kill (ok)"
else
  echo "victim absent after the kill (ok)"
fi

AFTER="$("${LOAD}" --data-dir "${DIR}" --verify base)"
echo "${AFTER}"
[[ "${BEFORE}" == "${AFTER}" ]] \
  || { echo "FAIL: fingerprint changed across crash/recovery" >&2; exit 1; }

echo "--- csv round trip ---"
CSV="${DIR}/trips.csv"
printf 'id,dist\n1,2.5\n2,3.25\n3,10.125\n' > "${CSV}"
"${LOAD}" --data-dir "${DIR}" --csv "${CSV}" --table trips \
  --schema "id:INT64,dist:DOUBLE"
"${LOAD}" --data-dir "${DIR}" --verify trips \
  | grep -q '^trips: 3 rows, 2 cols' \
  || { echo "FAIL: csv table did not verify" >&2; exit 1; }
# A bad row must be rejected with the 1-based line number.
printf 'id,dist\n1,2.5\nbad,3.0\n' > "${CSV}"
set +e
ERR="$("${LOAD}" --data-dir "${DIR}" --csv "${CSV}" --table trips2 \
  --schema "id:INT64,dist:DOUBLE" 2>&1)"
ERR_EXIT=$?
set -e
[[ "${ERR_EXIT}" -ne 0 ]] \
  || { echo "FAIL: bad csv row was accepted" >&2; exit 1; }
grep -q 'line 3' <<<"${ERR}" \
  || { echo "FAIL: csv error did not cite the line: ${ERR}" >&2; exit 1; }

echo "storage smoke: OK"
