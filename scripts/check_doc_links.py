#!/usr/bin/env python3
"""Checks that relative links in the repo's markdown files resolve.

Walks every tracked-directory *.md, extracts inline markdown links
[text](target), and verifies that each relative target exists on disk
(anchors are stripped; absolute URLs and mailto: are skipped). This is the
doc-link gate wired into scripts/check.sh format and the format-check CI
job: a rename or file move that strands a cross-reference fails fast
instead of rotting.

Usage: scripts/check_doc_links.py [root]     # default: repo root
"""
import os
import re
import sys

# Inline links only; reference-style links are rare here and the regex
# deliberately ignores fenced code blocks' ](...) lookalikes by requiring
# the [...] part.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")
SKIP_DIRS = {".git", ".claude", "third_party"}


def iter_markdown_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [
            d for d in dirnames
            if d not in SKIP_DIRS and not d.startswith("build")
        ]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def strip_code_blocks(text):
    """Drops fenced code blocks so example links don't get checked."""
    out, in_fence = [], False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if not in_fence:
            out.append(line)
    return "\n".join(out)


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    broken = []
    checked = 0
    for path in sorted(iter_markdown_files(root)):
        with open(path, encoding="utf-8") as f:
            text = strip_code_blocks(f.read())
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES):
                continue
            target_path = target.split("#", 1)[0]
            if not target_path:
                continue
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(path), target_path))
            checked += 1
            if not os.path.exists(resolved):
                broken.append((path, target))
    for path, target in broken:
        print(f"{path}: broken link -> {target}")
    print(f"doc links: {checked} checked, {len(broken)} broken")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main())
