// rma_load: bulk loader / inspector for durable RMA databases.
//
//   ./build/tools/rma_load --data-dir /var/lib/rma \
//       --csv trips.csv --table trips --schema "id:INT64,dist:DOUBLE"
//
// Converts CSV files (or synthetic workload relations) into the native
// paged column format under --data-dir: columns are written page-by-page
// with checksums and committed by an atomic manifest swing, so a crash at
// any point leaves the previous catalog intact. Also verifies tables after
// a restart (--verify prints a deterministic content fingerprint) and
// lists or drops catalog entries.
//
// Commands (exactly one):
//   --csv FILE --table NAME --schema SPEC   load a CSV file
//   --synthetic NAME --rows N --cols N      load a synthetic uniform table
//   --verify NAME                           print rows/cols + fingerprint
//   --list                                  print the recovered catalog
//   --drop NAME                             drop a table
//
// SPEC is comma-separated `attr:TYPE` with TYPE one of INT64, DOUBLE,
// STRING, matching the CSV header order.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "sql/database.h"
#include "storage/pager.h"
#include "storage/relation.h"
#include "workload/csv.h"
#include "workload/synthetic.h"

using namespace rma;

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --data-dir DIR <command> [options]\n"
      "commands (exactly one):\n"
      "  --csv FILE --table NAME --schema SPEC  load CSV (SPEC: attr:TYPE,"
      "...;\n"
      "                                         TYPE: INT64|DOUBLE|STRING)\n"
      "  --synthetic NAME                       load a synthetic uniform "
      "table\n"
      "  --verify NAME                          print rows/cols and a\n"
      "                                         deterministic content "
      "fingerprint\n"
      "  --list                                 print the catalog\n"
      "  --drop NAME                            drop a table\n"
      "options:\n"
      "  --rows N             synthetic rows (default 10000)\n"
      "  --cols N             synthetic application columns (default 4)\n"
      "  --seed N             synthetic RNG seed (default 42)\n"
      "  --pool-mb N          buffer-pool capacity in MiB (default 256)\n"
      "  --page-bytes N       page size for newly written files\n"
      "  --sleep-per-column MS  sleep between column writes (crash-test "
      "hook)\n",
      argv0);
  return 2;
}

bool ParseSchemaSpec(const std::string& spec,
                     std::vector<Attribute>* out) {
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string field = spec.substr(pos, comma - pos);
    const size_t colon = field.rfind(':');
    if (colon == std::string::npos || colon == 0) return false;
    const std::string name = field.substr(0, colon);
    const std::string type = field.substr(colon + 1);
    DataType dt;
    if (type == "INT64") {
      dt = DataType::kInt64;
    } else if (type == "DOUBLE") {
      dt = DataType::kDouble;
    } else if (type == "STRING") {
      dt = DataType::kString;
    } else {
      return false;
    }
    out->push_back(Attribute{name, dt});
    pos = comma + 1;
    if (comma == spec.size()) break;
  }
  return !out->empty();
}

/// Deterministic fingerprint of a relation's contents: every cell rendered
/// to text and folded into one checksum, row-major. Identical for paged and
/// malloc-backed representations (GetString renders through the same
/// formatting either way), so the smoke script can compare a table across a
/// kill/restart cycle.
uint64_t Fingerprint(const Relation& r) {
  uint64_t sum = 0;
  for (int64_t row = 0; row < r.num_rows(); ++row) {
    for (int col = 0; col < r.num_columns(); ++col) {
      const std::string cell = r.column(col)->GetString(row);
      sum = StorageChecksum(cell.data(), cell.size(), sum + 1);
    }
  }
  return sum;
}

}  // namespace

int main(int argc, char** argv) {
  std::string data_dir, csv_path, table, schema_spec, synthetic_name;
  std::string verify_name, drop_name;
  bool list = false;
  int64_t rows = 10000, seed = 42;
  int cols = 4;
  PagedStoreOptions store_opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_next = i + 1 < argc;
    if (arg == "--data-dir" && has_next) {
      data_dir = argv[++i];
    } else if (arg == "--csv" && has_next) {
      csv_path = argv[++i];
    } else if (arg == "--table" && has_next) {
      table = argv[++i];
    } else if (arg == "--schema" && has_next) {
      schema_spec = argv[++i];
    } else if (arg == "--synthetic" && has_next) {
      synthetic_name = argv[++i];
    } else if (arg == "--verify" && has_next) {
      verify_name = argv[++i];
    } else if (arg == "--drop" && has_next) {
      drop_name = argv[++i];
    } else if (arg == "--list") {
      list = true;
    } else if (arg == "--rows" && has_next) {
      rows = std::atoll(argv[++i]);
    } else if (arg == "--cols" && has_next) {
      cols = std::atoi(argv[++i]);
    } else if (arg == "--seed" && has_next) {
      seed = std::atoll(argv[++i]);
    } else if (arg == "--pool-mb" && has_next) {
      store_opts.pool_bytes = std::atoll(argv[++i]) * 1024 * 1024;
    } else if (arg == "--page-bytes" && has_next) {
      store_opts.page_bytes = std::atoll(argv[++i]);
    } else if (arg == "--sleep-per-column" && has_next) {
      store_opts.sleep_ms_between_columns = std::atoi(argv[++i]);
    } else {
      return Usage(argv[0]);
    }
  }
  const int commands = (csv_path.empty() ? 0 : 1) +
                       (synthetic_name.empty() ? 0 : 1) +
                       (verify_name.empty() ? 0 : 1) +
                       (drop_name.empty() ? 0 : 1) + (list ? 0 : 0) +
                       (list ? 1 : 0);
  if (data_dir.empty() || commands != 1) return Usage(argv[0]);

  Result<sql::Database> opened = sql::Database::Open(data_dir, store_opts);
  if (!opened.ok()) {
    std::fprintf(stderr, "error: opening %s: %s\n", data_dir.c_str(),
                 opened.status().ToString().c_str());
    return 1;
  }
  sql::Database db = std::move(*opened);

  if (list) {
    for (const std::string& name : db.TableNames()) {
      const Relation rel = db.Get(name).ValueOrDie();
      std::printf("%s: %lld rows, %lld cols\n", name.c_str(),
                  static_cast<long long>(rel.num_rows()),
                  static_cast<long long>(rel.num_columns()));
    }
    return 0;
  }
  if (!drop_name.empty()) {
    const Status st = db.Drop(drop_name);
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("dropped %s\n", drop_name.c_str());
    return 0;
  }
  if (!verify_name.empty()) {
    Result<Relation> rel = db.Get(verify_name);
    if (!rel.ok()) {
      std::fprintf(stderr, "error: %s\n", rel.status().ToString().c_str());
      return 1;
    }
    // The smoke script parses this exact line shape.
    std::printf("%s: %lld rows, %lld cols, fingerprint %016llx\n",
                verify_name.c_str(), static_cast<long long>(rel->num_rows()),
                static_cast<long long>(rel->num_columns()),
                static_cast<unsigned long long>(Fingerprint(*rel)));
    return 0;
  }

  Relation rel;
  std::string target;
  if (!synthetic_name.empty()) {
    target = synthetic_name;
    rel = workload::UniformRelation(rows, cols, static_cast<uint64_t>(seed),
                                    0.0, 10000.0, /*sorted=*/false, target);
  } else {
    if (table.empty() || schema_spec.empty()) return Usage(argv[0]);
    target = table;
    std::vector<Attribute> fields;
    if (!ParseSchemaSpec(schema_spec, &fields)) {
      std::fprintf(stderr, "error: bad --schema spec '%s'\n",
                   schema_spec.c_str());
      return 2;
    }
    Result<Schema> schema = Schema::Make(fields);
    if (!schema.ok()) {
      std::fprintf(stderr, "error: %s\n", schema.status().ToString().c_str());
      return 1;
    }
    Result<Relation> read = workload::ReadCsv(csv_path, *schema, target);
    if (!read.ok()) {
      std::fprintf(stderr, "error: %s\n", read.status().ToString().c_str());
      return 1;
    }
    rel = std::move(*read);
  }
  const Status st = db.Register(target, std::move(rel));
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  const Relation stored = db.Get(target).ValueOrDie();
  std::printf("loaded %s: %lld rows, %lld cols\n", target.c_str(),
              static_cast<long long>(stored.num_rows()),
              static_cast<long long>(stored.num_columns()));
  return 0;
}
