// rma_client: command-line client for rma_server.
//
//   ./build/tools/rma_client --port 7744 -e "SELECT * FROM weather;"
//   ./build/tools/rma_client --port 7744 --workload fig13 --reps 3 --counts
//
// Each -e adds one statement; --workload appends the canonical Fig. 13
// (Gram matrix / QR over the synthetic table m) or Fig. 15 (OLS) statement
// shapes the server's synthetic tables are built for. Statements run in
// order, --reps times. --option k=v applies session options before the
// first statement; --prepare routes every statement through
// PREPARE/EXECUTE_PREPARED instead of one-shot EXECUTE.
//
// Default output prints each result relation; --counts prints one
// machine-parseable line per statement instead:
//   rows=<n> batches=<b> cache=<hit|miss|-> seconds=<s>
// which is what scripts/server_smoke.sh greps.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "client/client.h"

using namespace rma;

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --host HOST         server address (default 127.0.0.1)\n"
      "  --port PORT         server port (default 7744)\n"
      "  -e SQL              add a statement (repeatable)\n"
      "  --workload NAME     append fig13 or fig15 statements\n"
      "  --reps N            run the statement list N times (default 1)\n"
      "  --option K=V        set a session option before running\n"
      "  --prepare           use PREPARE + EXECUTE_PREPARED\n"
      "  --counts            print per-statement count lines only\n",
      argv0);
  return 2;
}

std::vector<std::string> WorkloadStatements(const std::string& name) {
  if (name == "fig13") {
    // Gram-matrix shapes over the server's synthetic table m: the
    // transpose-multiply plan (rewritten to a dense syrk cross product)
    // and the QR factor the paper's Fig. 13 micro-benchmarks exercise.
    return {
        "SELECT * FROM MMU(TRA(m BY id) BY C, m BY id);",
        "SELECT * FROM CPD(m BY id, m BY id);",
        "SELECT * FROM QQR(m BY id);",
    };
  }
  if (name == "fig15") {
    // OLS through relational matrix operations (Fig. 15):
    // beta = MMU(INV(CPD(A, A)), CPD(A, V)).
    return {
        "SELECT * FROM MMU(INV(CPD(m BY id, m BY id) BY C) BY C,"
        " CPD(m BY id, v BY id) BY C);",
    };
  }
  return {};
}

const char* CacheLabel(uint8_t plan_cache) {
  switch (plan_cache) {
    case 1:
      return "hit";
    case 2:
      return "miss";
    default:
      return "-";
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  uint16_t port = 7744;
  std::vector<std::string> statements;
  std::vector<std::pair<std::string, std::string>> options;
  int reps = 1;
  bool prepare = false;
  bool counts = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_next = i + 1 < argc;
    if (arg == "--host" && has_next) {
      host = argv[++i];
    } else if (arg == "--port" && has_next) {
      port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (arg == "-e" && has_next) {
      statements.emplace_back(argv[++i]);
    } else if (arg == "--workload" && has_next) {
      std::vector<std::string> w = WorkloadStatements(argv[++i]);
      if (w.empty()) {
        std::fprintf(stderr, "error: unknown workload '%s'\n", argv[i]);
        return 2;
      }
      statements.insert(statements.end(), w.begin(), w.end());
    } else if (arg == "--reps" && has_next) {
      reps = std::atoi(argv[++i]);
    } else if (arg == "--option" && has_next) {
      const std::string kv = argv[++i];
      const size_t eq = kv.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "error: --option expects K=V, got '%s'\n",
                     kv.c_str());
        return 2;
      }
      options.emplace_back(kv.substr(0, eq), kv.substr(eq + 1));
    } else if (arg == "--prepare") {
      prepare = true;
    } else if (arg == "--counts") {
      counts = true;
    } else {
      return Usage(argv[0]);
    }
  }
  if (statements.empty()) {
    std::fprintf(stderr, "error: no statements (use -e or --workload)\n");
    return Usage(argv[0]);
  }

  Result<client::Client> conn = client::Client::Connect(host, port);
  if (!conn.ok()) {
    std::fprintf(stderr, "connect error: %s\n",
                 conn.status().ToString().c_str());
    return 1;
  }
  client::Client c = std::move(*conn);
  for (const auto& [key, value] : options) {
    const Status st = c.SetOption(key, value);
    if (!st.ok()) {
      std::fprintf(stderr, "set option %s: %s\n", key.c_str(),
                   st.ToString().c_str());
      return 1;
    }
  }

  std::vector<uint64_t> handles;
  if (prepare) {
    for (const auto& sql : statements) {
      Result<uint64_t> h = c.Prepare(sql);
      if (!h.ok()) {
        std::fprintf(stderr, "prepare error: %s\n",
                     h.status().ToString().c_str());
        return 1;
      }
      handles.push_back(*h);
    }
  }

  int failures = 0;
  for (int rep = 0; rep < reps; ++rep) {
    for (size_t s = 0; s < statements.size(); ++s) {
      Result<client::ExecResult> result =
          prepare ? c.ExecutePrepared(handles[s]) : c.Execute(statements[s]);
      if (!result.ok()) {
        // Statement-level errors leave the session usable; keep going so a
        // bad statement in a script doesn't hide later results.
        std::fprintf(stderr, "error: %s\n",
                     result.status().ToString().c_str());
        ++failures;
        if (!c.connected()) return 1;
        continue;
      }
      if (result->relation.num_rows() !=
          static_cast<int64_t>(result->rows)) {
        std::fprintf(stderr,
                     "error: streamed %lld rows but server reported %llu\n",
                     static_cast<long long>(result->relation.num_rows()),
                     static_cast<unsigned long long>(result->rows));
        ++failures;
        continue;
      }
      if (counts) {
        std::printf("rows=%llu batches=%lld cache=%s seconds=%.6f\n",
                    static_cast<unsigned long long>(result->rows),
                    static_cast<long long>(result->batches),
                    CacheLabel(result->plan_cache), result->server_seconds);
      } else {
        std::printf("%s", result->relation.ToString(24).c_str());
        std::printf("(%llu rows, %.6fs server time)\n",
                    static_cast<unsigned long long>(result->rows),
                    result->server_seconds);
      }
      std::fflush(stdout);
    }
  }
  return failures == 0 ? 0 : 1;
}
