// rma_server: multi-client SQL server front-end over the RMA database.
//
//   ./build/tools/rma_server --port 7744
//
// Serves the length-prefixed binary protocol of docs/PROTOCOL.md: each
// connection gets a session with its own RmaOptions (SET_OPTION), prepared
// statements, and streamed row-batch results; concurrent statements pass
// through the server's admission gate, which bounds how many execute at
// once and splits the thread budget across them.
//
// The catalog starts with the paper's example tables (u, f, rating,
// weather) plus two synthetic numeric tables for matrix workloads:
//   m: id INT, a0..a<cols-1> DOUBLE   (--rows, --cols)
//   v: id INT, a0 DOUBLE
// so clients can immediately run the Fig. 13 / Fig. 15 statement shapes:
//   SELECT * FROM MMU(TRA(m BY id) BY C, m BY id);
//   SELECT * FROM MMU(INV(CPD(m BY id, m BY id)) BY C,
//                     CPD(m BY id, v BY id) BY C);
//
// Stops cleanly on SIGINT/SIGTERM: stops accepting, refuses newly submitted
// statements, lets in-flight statements finish and stream, then exits with
// a stats summary.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "server/server.h"
#include "sql/database.h"
#include "workload/synthetic.h"

using namespace rma;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

void LoadDemoTables(sql::Database& db) {
  // With a durable data dir the catalog survives restarts; only seed the
  // demo tables a previous run has not already persisted.
  if (db.Has("u") && db.Has("f") && db.Has("rating") && db.Has("weather")) {
    return;
  }
  {
    RelationBuilder b(Schema::Make({{"User", DataType::kString},
                                    {"State", DataType::kString},
                                    {"YoB", DataType::kInt64}})
                          .ValueOrDie());
    b.AppendRow({std::string("Ann"), std::string("CA"), int64_t{1980}}).Abort();
    b.AppendRow({std::string("Tom"), std::string("FL"), int64_t{1965}}).Abort();
    b.AppendRow({std::string("Jan"), std::string("CA"), int64_t{1970}}).Abort();
    db.Register("u", b.Finish().ValueOrDie()).Abort();
  }
  {
    RelationBuilder b(Schema::Make({{"Title", DataType::kString},
                                    {"RelY", DataType::kInt64},
                                    {"Director", DataType::kString}})
                          .ValueOrDie());
    b.AppendRow({std::string("Heat"), int64_t{1995}, std::string("Lee")})
        .Abort();
    b.AppendRow({std::string("Balto"), int64_t{1995}, std::string("Lee")})
        .Abort();
    b.AppendRow({std::string("Net"), int64_t{1995}, std::string("Smith")})
        .Abort();
    db.Register("f", b.Finish().ValueOrDie()).Abort();
  }
  {
    RelationBuilder b(Schema::Make({{"User", DataType::kString},
                                    {"Balto", DataType::kDouble},
                                    {"Heat", DataType::kDouble},
                                    {"Net", DataType::kDouble}})
                          .ValueOrDie());
    b.AppendRow({std::string("Ann"), 2.0, 1.5, 0.5}).Abort();
    b.AppendRow({std::string("Tom"), 0.0, 0.0, 1.5}).Abort();
    b.AppendRow({std::string("Jan"), 1.0, 4.0, 1.0}).Abort();
    db.Register("rating", b.Finish().ValueOrDie()).Abort();
  }
  {
    RelationBuilder b(Schema::Make({{"T", DataType::kString},
                                    {"H", DataType::kDouble},
                                    {"W", DataType::kDouble}})
                          .ValueOrDie());
    b.AppendRow({std::string("5am"), 1.0, 3.0}).Abort();
    b.AppendRow({std::string("8am"), 8.0, 5.0}).Abort();
    b.AppendRow({std::string("7am"), 6.0, 7.0}).Abort();
    b.AppendRow({std::string("6am"), 1.0, 4.0}).Abort();
    db.Register("weather", b.Finish().ValueOrDie()).Abort();
  }
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --host HOST        bind address (default 127.0.0.1)\n"
      "  --port PORT        listen port; 0 picks an ephemeral port "
      "(default 7744)\n"
      "  --max-sessions N   concurrent session cap (default 64)\n"
      "  --admission N      max concurrently executing statements\n"
      "                     (default: the thread budget)\n"
      "  --batch-rows N     rows per streamed ROW_BATCH frame (default 256)\n"
      "  --drain-timeout MS grace for in-flight statements on shutdown "
      "before\n"
      "                     stalled connections are forcibly closed "
      "(default 5000)\n"
      "  --calibration-dir D allow the calibration_path session option to "
      "load\n"
      "                     profiles (read-only) from directory D "
      "(default: off)\n"
      "  --rows N           rows in the synthetic tables m and v "
      "(default 10000)\n"
      "  --cols N           application columns in m (default 4)\n"
      "  --data-dir DIR     durable storage directory: the catalog is\n"
      "                     recovered from DIR's manifest at startup and\n"
      "                     every Register/Drop/CTAS persists atomically;\n"
      "                     table columns read through the buffer pool\n"
      "                     (default: in-memory; env RMA_DATA_DIR)\n"
      "  --pool-mb N        buffer-pool capacity in MiB for --data-dir\n"
      "                     (default 256; env RMA_POOL_BYTES in bytes)\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  server::ServerOptions opts;
  opts.port = 7744;
  int64_t rows = 10000;
  int cols = 4;
  // Flags override the environment, which overrides the in-memory default.
  std::string data_dir;
  PagedStoreOptions store_opts;
  if (const char* env = std::getenv("RMA_DATA_DIR")) data_dir = env;
  if (const char* env = std::getenv("RMA_POOL_BYTES")) {
    store_opts.pool_bytes = std::atoll(env);
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_next = i + 1 < argc;
    if (arg == "--host" && has_next) {
      opts.host = argv[++i];
    } else if (arg == "--port" && has_next) {
      opts.port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (arg == "--max-sessions" && has_next) {
      opts.max_sessions = std::atoi(argv[++i]);
    } else if (arg == "--admission" && has_next) {
      opts.max_inflight_statements = std::atoi(argv[++i]);
    } else if (arg == "--batch-rows" && has_next) {
      opts.row_batch_rows = std::atoll(argv[++i]);
    } else if (arg == "--drain-timeout" && has_next) {
      opts.drain_timeout_ms = std::atoi(argv[++i]);
    } else if (arg == "--calibration-dir" && has_next) {
      opts.calibration_dir = argv[++i];
    } else if (arg == "--rows" && has_next) {
      rows = std::atoll(argv[++i]);
    } else if (arg == "--cols" && has_next) {
      cols = std::atoi(argv[++i]);
    } else if (arg == "--data-dir" && has_next) {
      data_dir = argv[++i];
    } else if (arg == "--pool-mb" && has_next) {
      store_opts.pool_bytes = std::atoll(argv[++i]) * 1024 * 1024;
    } else {
      return Usage(argv[0]);
    }
  }

  sql::Database db;
  if (!data_dir.empty()) {
    Result<sql::Database> opened = sql::Database::Open(data_dir, store_opts);
    if (!opened.ok()) {
      std::fprintf(stderr, "error: opening %s: %s\n", data_dir.c_str(),
                   opened.status().ToString().c_str());
      return 1;
    }
    db = std::move(*opened);
    std::printf("data dir: %s (%lld recovered tables, pool %lld MiB)\n",
                data_dir.c_str(),
                static_cast<long long>(db.TableNames().size()),
                static_cast<long long>(store_opts.pool_bytes >> 20));
  }
  LoadDemoTables(db);
  if (!db.Has("m")) {
    db.Register("m", workload::UniformRelation(rows, cols, /*seed=*/42, 0.0,
                                               10000.0, /*sorted=*/false, "m"))
        .Abort();
  }
  if (!db.Has("v")) {
    db.Register("v", workload::UniformRelation(rows, 1, /*seed=*/7, 0.0,
                                               10000.0, /*sorted=*/false, "v"))
        .Abort();
  }

  server::Server server(&db, opts);
  const Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  // The smoke script and tests parse this exact line for the bound port.
  std::printf("rma_server listening on %s:%u\n", opts.host.c_str(),
              static_cast<unsigned>(server.port()));
  std::printf("tables: u, f, rating, weather, m(%lld x %d), v(%lld x 1)\n",
              static_cast<long long>(rows), cols, static_cast<long long>(rows));
  std::fflush(stdout);

  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::printf("shutting down: draining in-flight statements...\n");
  std::fflush(stdout);
  server.Stop();
  const server::ServerStats stats = server.stats();
  std::printf(
      "sessions: %lld accepted, %lld refused\n"
      "statements: %lld executed (%lld failed), %lld refused during drain\n"
      "streamed: %lld rows in %lld batches\n"
      "admission: %d peak in flight, %lld waits\n",
      static_cast<long long>(stats.sessions_accepted),
      static_cast<long long>(stats.sessions_refused),
      static_cast<long long>(stats.statements_executed),
      static_cast<long long>(stats.statements_failed),
      static_cast<long long>(stats.statements_refused),
      static_cast<long long>(stats.rows_streamed),
      static_cast<long long>(stats.batches_streamed), stats.peak_in_flight,
      static_cast<long long>(stats.admission_waits));
  return 0;
}
