# Configure-time negative-compilation checks for util/thread_annotations.h.
#
# Each snippet under tests/util/thread_annotations_compile/ is try_compile'd
# with the same compiler as the main build; under clang the thread-safety
# analysis is forced on (-Wthread-safety -Werror) so the VIOLATION snippets
# must FAIL, while under GCC/MSVC the macros expand to nothing and every
# snippet must compile. The 0/1 outcomes are baked into a generated header
# (thread_annotations_check_results.h) asserted by
# tests/util/thread_annotations_compile_test.cc — so a regression in either
# direction (analysis silently off under clang, or the no-op fallback
# breaking other compilers) fails the test suite, not just a CI log grep.

function(rma_try_annotation_snippet result_var snippet)
  set(flags "")
  if(CMAKE_CXX_COMPILER_ID MATCHES "Clang")
    set(flags "-Wthread-safety -Werror")
  endif()
  try_compile(snippet_ok
    ${CMAKE_BINARY_DIR}/thread_annotation_checks/${snippet}
    SOURCES
      ${CMAKE_CURRENT_SOURCE_DIR}/tests/util/thread_annotations_compile/${snippet}.cc
    CMAKE_FLAGS
      "-DINCLUDE_DIRECTORIES=${CMAKE_CURRENT_SOURCE_DIR}/src"
      "-DCMAKE_CXX_FLAGS=${flags}"
    CXX_STANDARD 17
    CXX_STANDARD_REQUIRED ON
  )
  if(snippet_ok)
    set(${result_var} 1 PARENT_SCOPE)
  else()
    set(${result_var} 0 PARENT_SCOPE)
  endif()
endfunction()

if(CMAKE_CXX_COMPILER_ID MATCHES "Clang")
  set(RMA_CHECK_COMPILER_IS_CLANG 1)
else()
  set(RMA_CHECK_COMPILER_IS_CLANG 0)
endif()

rma_try_annotation_snippet(RMA_CHECK_OK_LOCKED_COMPILES ok_locked)
rma_try_annotation_snippet(RMA_CHECK_GUARDED_NO_LOCK_COMPILES guarded_no_lock)
rma_try_annotation_snippet(RMA_CHECK_REQUIRES_UNLOCKED_COMPILES
  requires_unlocked)
rma_try_annotation_snippet(RMA_CHECK_EXCLUDES_VIOLATION_COMPILES
  excludes_violation)

message(STATUS
  "Thread-annotation checks (clang=${RMA_CHECK_COMPILER_IS_CLANG}): "
  "ok_locked=${RMA_CHECK_OK_LOCKED_COMPILES} "
  "guarded_no_lock=${RMA_CHECK_GUARDED_NO_LOCK_COMPILES} "
  "requires_unlocked=${RMA_CHECK_REQUIRES_UNLOCKED_COMPILES} "
  "excludes_violation=${RMA_CHECK_EXCLUDES_VIOLATION_COMPILES}")

configure_file(
  ${CMAKE_CURRENT_SOURCE_DIR}/cmake/thread_annotations_check_results.h.in
  ${CMAKE_BINARY_DIR}/generated/thread_annotations_check_results.h
  @ONLY)
